// Edge betweenness (the Girvan–Newman building block used by the
// community-detection example).

#include <gtest/gtest.h>

#include "cpu/brandes.hpp"
#include "cpu/edge_bc.hpp"
#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::Edge;
using graph::VertexId;

TEST(EdgeBC, PathGraphEdgeScores) {
  // Path 0-1-2-3: edge {i,i+1} lies on all ordered pairs crossing it:
  // (i+1) * (n-1-i) pairs each way.
  const CSRGraph g = graph::build_csr(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  const auto r = cpu::edge_betweenness(g);
  const auto slot01 = cpu::find_edge_slot(g, 0, 1);
  const auto slot12 = cpu::find_edge_slot(g, 1, 2);
  const auto slot23 = cpu::find_edge_slot(g, 2, 3);
  EXPECT_DOUBLE_EQ(r.edge_bc[slot01], 2.0 * 1 * 3);
  EXPECT_DOUBLE_EQ(r.edge_bc[slot12], 2.0 * 2 * 2);
  EXPECT_DOUBLE_EQ(r.edge_bc[slot23], 2.0 * 3 * 1);
}

TEST(EdgeBC, MirroredSlotsCarryEqualScores) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto r = cpu::edge_betweenness(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      const auto forward = cpu::find_edge_slot(g, u, v);
      const auto backward = cpu::find_edge_slot(g, v, u);
      ASSERT_LT(forward, g.num_directed_edges());
      ASSERT_LT(backward, g.num_directed_edges());
      EXPECT_DOUBLE_EQ(r.edge_bc[forward], r.edge_bc[backward]);
    }
  }
}

TEST(EdgeBC, VertexByproductMatchesBrandes) {
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 80, .attach = 2, .seed = 4});
  const auto r = cpu::edge_betweenness(g);
  const auto oracle = cpu::brandes(g).bc;
  ASSERT_EQ(r.vertex_bc.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_NEAR(r.vertex_bc[i], oracle[i], 1e-9);
  }
}

TEST(EdgeBC, BridgeEdgeDominates) {
  // Two triangles joined by a bridge: the bridge edge must outrank all.
  const CSRGraph g = graph::build_csr(
      6, std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  const auto r = cpu::edge_betweenness(g);
  const auto bridge = cpu::find_edge_slot(g, 2, 3);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      const auto slot = cpu::find_edge_slot(g, u, v);
      if (slot != bridge && slot != cpu::find_edge_slot(g, 3, 2)) {
        EXPECT_LT(r.edge_bc[slot], r.edge_bc[bridge]);
      }
    }
  }
  // Bridge carries all 9 cross pairs in both directions.
  EXPECT_DOUBLE_EQ(r.edge_bc[bridge], 18.0);
}

TEST(EdgeBC, SumOverEdgesRelatesToPairCount) {
  // For a connected undirected graph, summing edge BC over undirected
  // edges counts each ordered pair's path length: sum = sum_{s!=t} d(s,t).
  const CSRGraph g = graph::gen::figure1_graph();
  const auto r = cpu::edge_betweenness(g);
  double sum = 0.0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) sum += r.edge_bc[cpu::find_edge_slot(g, u, v)];
    }
  }
  double expected = 0.0;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto bfs = graph::bfs(g, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (t != s && bfs.distance[t] != graph::kInfDistance) {
        expected += bfs.distance[t];
      }
    }
  }
  EXPECT_NEAR(sum, expected, 1e-9);
}

TEST(EdgeBC, SourceSubsetAccumulates) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto full = cpu::edge_betweenness(g);
  std::vector<double> acc(g.num_directed_edges(), 0.0);
  // Per-source runs mirror scores; accumulate the per-direction raw
  // contributions by halving the mirrored values... simpler: sum of
  // single-source runs of the *vertex* byproduct must equal the full run.
  std::vector<double> vacc(g.num_vertices(), 0.0);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto r = cpu::edge_betweenness(g, {s});
    for (std::size_t i = 0; i < vacc.size(); ++i) vacc[i] += r.vertex_bc[i];
  }
  (void)acc;
  for (std::size_t i = 0; i < vacc.size(); ++i) {
    EXPECT_NEAR(vacc[i], full.vertex_bc[i], 1e-9);
  }
}

TEST(FindEdgeSlot, MissingEdgeReturnsSentinel) {
  const CSRGraph g = graph::build_csr(3, std::vector<Edge>{{0, 1}});
  EXPECT_EQ(cpu::find_edge_slot(g, 0, 2), g.num_directed_edges());
  EXPECT_LT(cpu::find_edge_slot(g, 0, 1), g.num_directed_edges());
}

}  // namespace
