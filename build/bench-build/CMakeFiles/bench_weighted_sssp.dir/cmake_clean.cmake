file(REMOVE_RECURSE
  "../bench/bench_weighted_sssp"
  "../bench/bench_weighted_sssp.pdb"
  "CMakeFiles/bench_weighted_sssp.dir/bench_weighted_sssp.cpp.o"
  "CMakeFiles/bench_weighted_sssp.dir/bench_weighted_sssp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weighted_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
