#include "cpu/weighted_brandes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "cpu/edge_bc.hpp"
#include "util/rng.hpp"

namespace hbc::cpu {

using graph::CSRGraph;
using graph::EdgeOffset;
using graph::VertexId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative tolerance for "equal distance" under floating-point weights.
constexpr double kTieEps = 1e-12;

bool same_distance(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) return a == b;
  return std::abs(a - b) <= kTieEps * std::max({1.0, std::abs(a), std::abs(b)});
}

void validate(const CSRGraph& g, std::span<const double> weights) {
  if (weights.size() != g.num_directed_edges()) {
    throw std::invalid_argument("weighted_brandes: weight array size mismatch");
  }
  for (double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("weighted_brandes: weights must be positive finite");
    }
  }
}

struct QueueEntry {
  double dist;
  VertexId vertex;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    return a.dist > b.dist;
  }
};

}  // namespace

WeightArray random_symmetric_weights(const CSRGraph& g, double lo, double hi,
                                     std::uint64_t seed) {
  if (!(hi > lo) || !(lo > 0.0)) {
    throw std::invalid_argument("random_symmetric_weights: need 0 < lo < hi");
  }
  util::Xoshiro256 rng(seed);
  WeightArray weights(g.num_directed_edges(), 0.0);
  const auto sources = g.edge_sources();
  const auto cols = g.col_indices();
  for (EdgeOffset e = 0; e < g.num_directed_edges(); ++e) {
    const VertexId u = sources[e];
    const VertexId v = cols[e];
    if (!g.undirected() || u <= v) {
      weights[e] = lo + (hi - lo) * rng.next_double();
      if (g.undirected() && u != v) {
        const EdgeOffset back = find_edge_slot(g, v, u);
        if (back < g.num_directed_edges()) weights[back] = weights[e];
      }
    }
  }
  // Any slot not covered above (u > v direction) was filled via its mirror.
  return weights;
}

bool make_symmetric_weights(const CSRGraph& g, WeightArray& weights) {
  if (!g.undirected()) return false;
  const auto sources = g.edge_sources();
  const auto cols = g.col_indices();
  for (EdgeOffset e = 0; e < g.num_directed_edges(); ++e) {
    const VertexId u = sources[e];
    const VertexId v = cols[e];
    if (u < v) {
      const EdgeOffset back = find_edge_slot(g, v, u);
      if (back < g.num_directed_edges()) {
        const double avg = 0.5 * (weights[e] + weights[back]);
        weights[e] = weights[back] = avg;
      }
    }
  }
  return true;
}

WeightedPaths weighted_count_paths(const CSRGraph& g, std::span<const double> weights,
                                   VertexId s) {
  validate(g, weights);
  const VertexId n = g.num_vertices();
  WeightedPaths r;
  r.distance.assign(n, kInf);
  r.sigma.assign(n, 0.0);
  if (s >= n) return r;

  r.distance[s] = 0.0;
  r.sigma[s] = 1.0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  pq.push({0.0, s});
  std::vector<bool> settled(n, false);
  const auto offsets = g.row_offsets();
  const auto cols = g.col_indices();

  while (!pq.empty()) {
    const auto [dist, v] = pq.top();
    pq.pop();
    if (settled[v]) continue;
    settled[v] = true;
    for (EdgeOffset e = offsets[v]; e < offsets[v + 1]; ++e) {
      const VertexId w = cols[e];
      const double cand = dist + weights[e];
      if (cand < r.distance[w] && !same_distance(cand, r.distance[w])) {
        r.distance[w] = cand;
        r.sigma[w] = r.sigma[v];
        pq.push({cand, w});
      } else if (same_distance(cand, r.distance[w]) && !settled[w]) {
        r.sigma[w] += r.sigma[v];
      }
    }
  }
  return r;
}

WeightedBrandesResult weighted_brandes(const CSRGraph& g, std::span<const double> weights,
                                       const WeightedBrandesOptions& options) {
  validate(g, weights);
  const VertexId n = g.num_vertices();
  WeightedBrandesResult result;
  result.bc.assign(n, 0.0);

  const auto offsets = g.row_offsets();
  const auto cols = g.col_indices();

  std::vector<double> dist(n);
  std::vector<double> sigma(n);
  std::vector<double> delta(n);
  std::vector<bool> settled(n);
  std::vector<VertexId> order;  // settle order (non-decreasing distance)
  order.reserve(n);

  auto run_source = [&](VertexId s) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    std::fill(settled.begin(), settled.end(), false);
    order.clear();

    dist[s] = 0.0;
    sigma[s] = 1.0;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
    pq.push({0.0, s});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (settled[v]) continue;
      settled[v] = true;
      order.push_back(v);
      for (EdgeOffset e = offsets[v]; e < offsets[v + 1]; ++e) {
        const VertexId w = cols[e];
        const double cand = d + weights[e];
        if (cand < dist[w] && !same_distance(cand, dist[w])) {
          dist[w] = cand;
          sigma[w] = sigma[v];
          pq.push({cand, w});
        } else if (same_distance(cand, dist[w]) && !settled[w]) {
          sigma[w] += sigma[v];
        }
      }
    }

    // Successor-form accumulation in reverse settle order: v is a
    // predecessor of w on a shortest path iff dist[v] + weight == dist[w].
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const VertexId w = *it;
      double dsw = 0.0;
      for (EdgeOffset e = offsets[w]; e < offsets[w + 1]; ++e) {
        const VertexId v = cols[e];
        if (dist[v] < kInf && same_distance(dist[w] + weights[e], dist[v])) {
          dsw += (sigma[w] / sigma[v]) * (1.0 + delta[v]);
        }
      }
      delta[w] = dsw;
      if (w != s) result.bc[w] += dsw;
    }
  };

  if (options.sources.empty()) {
    for (VertexId s = 0; s < n; ++s) {
      run_source(s);
      ++result.roots_processed;
    }
  } else {
    for (VertexId s : options.sources) {
      if (s >= n) continue;
      run_source(s);
      ++result.roots_processed;
    }
  }
  return result;
}

}  // namespace hbc::cpu
