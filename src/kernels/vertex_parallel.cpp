#include "kernels/detail.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

RunResult run_vertex_parallel(const graph::CSRGraph& g, const RunConfig& config) {
  return detail::run_levelcheck_kernel(g, config, Mode::VertexParallel);
}

}  // namespace hbc::kernels
