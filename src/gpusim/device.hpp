#pragma once

// The simulated device: operation counters, per-block (per-SM) cycle
// accumulation, and block-to-SM scheduling.
//
// Execution model (matches the paper's coarse+fine-grained mapping):
//   * A kernel run launches B blocks; the driver assigns BC roots to
//     blocks round-robin (B == num_sms, as Jia et al. found optimal).
//   * Threads inside a block execute parallel-for rounds; a round over N
//     uniform-cost items costs ceil(N / threads_per_block) * item_cycles —
//     small frontiers therefore underutilize the block, reproducing the
//     fixed per-iteration floor that limits the work-efficient kernel on
//     very-high-diameter graphs.
//   * Imbalanced rounds (vertex-parallel: one thread per vertex, cost
//     proportional to out-degree) are charged as the maximum per-thread
//     total under round-robin item assignment — the load-imbalance effect
//     of §III.A.
//   * Device time for a run = max over blocks of accumulated cycles
//     (blocks run concurrently on distinct SMs); GPU-FAN-style grid
//     cooperative phases instead divide work across all device threads
//     and pay a kernel relaunch per grid-wide sync.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gpusim/config.hpp"
#include "gpusim/faults.hpp"
#include "gpusim/memory.hpp"
#include "trace/trace.hpp"

namespace hbc::gpusim {

/// Aggregate operation counters for a kernel run. "Traversed" edges are
/// useful work (the edge connects a frontier vertex); "inspected" includes
/// the futile scans the level-check traversals perform.
struct Counters {
  std::uint64_t edges_traversed = 0;
  std::uint64_t edges_inspected = 0;
  std::uint64_t vertices_scanned = 0;
  std::uint64_t queue_inserts = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t barriers = 0;
  std::uint64_t grid_syncs = 0;
  std::uint64_t bfs_iterations = 0;
  std::uint64_t roots_processed = 0;

  Counters& operator+=(const Counters& other) noexcept {
    edges_traversed += other.edges_traversed;
    edges_inspected += other.edges_inspected;
    vertices_scanned += other.vertices_scanned;
    queue_inserts += other.queue_inserts;
    atomic_ops += other.atomic_ops;
    barriers += other.barriers;
    grid_syncs += other.grid_syncs;
    bfs_iterations += other.bfs_iterations;
    roots_processed += other.roots_processed;
    return *this;
  }
};

/// Cost of a load-imbalanced parallel round (one work item per thread,
/// item costs vary; items assigned round-robin like a grid-stride loop).
/// The round completes at the barrier when BOTH bounds are met:
///   * throughput bound — total work spread across the block's threads;
///   * critical-path bound — the busiest thread's work, divided by the
///     per-thread ILP the hardware extracts from independent accesses.
/// This is what makes vertex-parallel suffer on scale-free graphs
/// (§III.A) without pretending a hub serializes at full memory latency.
class ImbalancedRound {
 public:
  explicit ImbalancedRound(std::uint32_t threads)
      : per_thread_(std::max<std::uint32_t>(threads, 1), 0), next_(0) {}

  void add_item(std::uint64_t cycles) noexcept {
    total_ += cycles;
    per_thread_[next_] += cycles;
    next_ = (next_ + 1) % per_thread_.size();
  }

  std::uint64_t total_cycles() const noexcept { return total_; }

  std::uint64_t max_thread_cycles() const noexcept {
    return *std::max_element(per_thread_.begin(), per_thread_.end());
  }

  std::uint64_t cost_cycles(std::uint32_t thread_ilp) const noexcept {
    const std::uint64_t throughput =
        (total_ + per_thread_.size() - 1) / per_thread_.size();
    const std::uint64_t ilp = std::max<std::uint32_t>(thread_ilp, 1);
    const std::uint64_t critical = (max_thread_cycles() + ilp - 1) / ilp;
    return std::max(throughput, critical);
  }

 private:
  std::vector<std::uint64_t> per_thread_;
  std::size_t next_;
  std::uint64_t total_ = 0;
};

/// Per-block accounting handle passed into kernels.
///
/// When the driver arms a FaultArm on the block (fault injection), the
/// charge_* methods throw DeviceFault once the block's cycle ledger
/// crosses the armed threshold — modelling an ECC error or watchdog
/// timeout surfacing mid-kernel. With no arm (the default) they cannot
/// throw; cycles charged before the trip stay in the ledger, mirroring
/// the wasted device time a real fault leaves behind.
class BlockContext {
 public:
  BlockContext(const DeviceConfig& cfg, Counters& counters, std::uint64_t& cycles,
               FaultArm* arm = nullptr, std::uint32_t block_index = 0,
               trace::Sink* trace = nullptr)
      : cfg_(&cfg),
        counters_(&counters),
        cycles_(&cycles),
        arm_(arm),
        block_index_(block_index),
        trace_(trace) {}

  const DeviceConfig& config() const noexcept { return *cfg_; }
  const CostModel& cost() const noexcept { return cfg_->cost; }
  Counters& counters() noexcept { return *counters_; }
  std::uint32_t block_index() const noexcept { return block_index_; }

  /// This block's trace sink; nullptr when tracing is off (the only cost
  /// an untraced run pays is this pointer test at each emission site).
  trace::Sink* trace() const noexcept { return trace_; }

  /// The block's cycle ledger as simulated-device nanoseconds. Pure
  /// function of the (integer) ledger, so trace timestamps derived from
  /// it are bitwise-identical at every host-thread count.
  std::uint64_t sim_ns() const noexcept {
    return static_cast<std::uint64_t>(
        cfg_->seconds_from_cycles(static_cast<double>(*cycles_)) * 1e9);
  }

  std::uint64_t cycles() const noexcept { return *cycles_; }
  void charge_cycles(std::uint64_t cycles) {
    *cycles_ += cycles;
    trace_charge();
    maybe_trip();
  }

  /// Uniform parallel round: N items, each costing item_cycles, spread
  /// over the block's threads (or `width` threads if given — GPU-FAN runs
  /// grid-wide rounds with width = device_threads()).
  void charge_uniform_round(std::uint64_t items, std::uint64_t item_cycles,
                            std::uint64_t width = 0) {
    if (items == 0) return;
    const std::uint64_t threads = width ? width : cfg_->threads_per_block;
    const std::uint64_t rounds = (items + threads - 1) / threads;
    *cycles_ += rounds * item_cycles;
    trace_charge();
    maybe_trip();
  }

  /// Imbalanced round helper; commit with charge_imbalanced_round().
  ImbalancedRound make_round(std::uint64_t width = 0) const {
    const std::uint64_t threads = width ? width : cfg_->threads_per_block;
    return ImbalancedRound(static_cast<std::uint32_t>(
        std::min<std::uint64_t>(threads, 1u << 20)));
  }

  void charge_imbalanced_round(const ImbalancedRound& round) {
    *cycles_ += round.cost_cycles(cfg_->cost.thread_ilp);
    trace_charge();
    maybe_trip();
  }

  void charge_barrier() {
    *cycles_ += cfg_->cost.block_barrier;
    ++counters_->barriers;
    trace_charge();
    maybe_trip();
  }

  void charge_grid_sync() {
    *cycles_ += cfg_->cost.grid_relaunch;
    ++counters_->grid_syncs;
    trace_charge();
    maybe_trip();
  }

 private:
  /// kCharge firehose: the ledger as a Chrome counter series after every
  /// charge. Off by default (not in trace::kDefault); when the category is
  /// masked this is one pointer test + one load/AND.
  void trace_charge() {
    if (trace_ && trace_->wants(trace::kCharge)) {
      trace_->counter("sim-cycles", trace::kCharge, sim_ns(),
                      {{"cycles", *cycles_}});
    }
  }

  void maybe_trip() {
    if (arm_ && arm_->armed && *cycles_ >= arm_->trip_cycles) {
      // Disarm before throwing so unwinding charge paths (and the next
      // root on this block) don't re-trip the same fault.
      arm_->armed = false;
      throw DeviceFault(arm_->kind, arm_->root, block_index_, arm_->transient);
    }
  }

  const DeviceConfig* cfg_;
  Counters* counters_;
  std::uint64_t* cycles_;
  FaultArm* arm_;
  std::uint32_t block_index_;
  trace::Sink* trace_;
};

/// A simulated GPU. Owns the memory ledger and the per-block cycle and
/// counter state for the current kernel run.
///
/// Each block has a private Counters ledger in addition to its private
/// cycle accumulator, so blocks may execute on distinct host threads
/// without sharing any mutable state (kernels::BlockDriver relies on
/// this). Aggregation happens only in counters(), after the run.
class Device {
 public:
  explicit Device(DeviceConfig cfg)
      : cfg_(std::move(cfg)), memory_(cfg_.memory_bytes) {}

  const DeviceConfig& config() const noexcept { return cfg_; }
  GlobalMemory& memory() noexcept { return memory_; }
  const GlobalMemory& memory() const noexcept { return memory_; }

  /// Aggregated operation counters: the per-block ledgers merged in
  /// block order. Safe to call only while no block context is live on
  /// another thread (i.e. between runs or after joining block threads).
  Counters counters() const noexcept {
    Counters total;
    for (const Counters& c : block_counters_) total += c;
    return total;
  }

  /// Start a run with `num_blocks` concurrent blocks (one per SM slot).
  void begin_run(std::uint32_t num_blocks) {
    const std::uint32_t n = std::max<std::uint32_t>(num_blocks, 1);
    block_cycles_.assign(n, 0);
    block_counters_.assign(n, Counters{});
    block_arms_.assign(n, FaultArm{});
    block_traces_.assign(n, nullptr);
  }

  /// Attach a trace sink to a block: every BlockContext handed out for the
  /// block records into it. The sink must be written by one thread at a
  /// time (kernels::BlockDriver guarantees a block runs on one host thread
  /// per phase). nullptr detaches.
  void set_block_trace(std::uint32_t index, trace::Sink* sink) {
    block_traces_.at(index) = sink;
  }

  std::uint32_t num_blocks() const noexcept {
    return static_cast<std::uint32_t>(block_cycles_.size());
  }

  BlockContext block(std::uint32_t index) {
    return BlockContext(cfg_, block_counters_.at(index), block_cycles_.at(index),
                        &block_arms_.at(index), index, block_traces_.at(index));
  }

  /// Arm an execution fault on a block: contexts for this block throw
  /// DeviceFault once the block ledger reaches arm-time cycles +
  /// `after_cycles`. The arm auto-disarms when it trips; call disarm()
  /// when the armed root completes without tripping.
  void arm_fault(std::uint32_t index, FaultKind kind, std::uint32_t root,
                 bool transient, std::uint64_t after_cycles) {
    FaultArm& arm = block_arms_.at(index);
    arm.armed = true;
    arm.kind = kind;
    arm.root = root;
    arm.transient = transient;
    arm.trip_cycles = block_cycles_.at(index) + after_cycles;
  }

  void disarm_fault(std::uint32_t index) { block_arms_.at(index).armed = false; }

  std::uint64_t block_cycles(std::uint32_t index) const {
    return block_cycles_.at(index);
  }

  const Counters& block_counters(std::uint32_t index) const {
    return block_counters_.at(index);
  }

  /// Elapsed cycles of the run so far: blocks execute concurrently on
  /// distinct SMs, so the run finishes when the slowest block does.
  std::uint64_t elapsed_cycles() const noexcept {
    return block_cycles_.empty()
               ? 0
               : *std::max_element(block_cycles_.begin(), block_cycles_.end());
  }

  double elapsed_seconds() const noexcept {
    return cfg_.seconds_from_cycles(static_cast<double>(elapsed_cycles()));
  }

  void reset() {
    block_cycles_.clear();
    block_counters_.clear();
    block_arms_.clear();
    block_traces_.clear();
    memory_.release_all();
  }

 private:
  DeviceConfig cfg_;
  GlobalMemory memory_;
  std::vector<std::uint64_t> block_cycles_;
  std::vector<Counters> block_counters_;
  std::vector<FaultArm> block_arms_;
  std::vector<trace::Sink*> block_traces_;  // non-owning; may hold nullptr
};

}  // namespace hbc::gpusim
