# Empty compiler generated dependencies file for test_direction_optimized.
# This may be replaced when dependencies are built.
