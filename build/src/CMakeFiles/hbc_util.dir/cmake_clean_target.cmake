file(REMOVE_RECURSE
  "libhbc_util.a"
)
