#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>

namespace hbc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_output_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

std::string lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

bool set_log_level(std::string_view name) noexcept {
  const std::string n = lowered(name);
  if (n == "trace") set_log_level(LogLevel::Trace);
  else if (n == "debug") set_log_level(LogLevel::Debug);
  else if (n == "info") set_log_level(LogLevel::Info);
  else if (n == "warn") set_log_level(LogLevel::Warn);
  else if (n == "error") set_log_level(LogLevel::Error);
  else if (n == "off") set_log_level(LogLevel::Off);
  else return false;
  return true;
}

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::fprintf(stderr, "[hbc %s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace hbc::util
