# Empty dependencies file for bench_table1_correlation.
# This may be replaced when dependencies are built.
