// Ablations over the design choices DESIGN.md calls out:
//   (1) hybrid alpha/beta sweep (paper settled on 768/512);
//   (2) sampling gamma and n_samps sweep (paper: gamma = 4, 512 samples);
//   (3) the mischoice-cost asymmetry (wrong EP >10x, wrong WE <=2.2x);
//   (4) block count: Jia et al.'s "blocks == #SMs is best" claim.

#include <cstdio>
#include <numeric>

#include "bench/common.hpp"
#include "dist/cluster.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"

int main() {
  using namespace hbc;

  const std::uint32_t scale = bench::env_u32("HBC_BENCH_SCALE", 12);
  const std::uint32_t num_roots = bench::env_u32("HBC_BENCH_ROOTS", 32);

  // Road gets two extra scale steps: its diameter (the quantity that
  // separates the methods) is otherwise too small to show the asymmetry.
  const graph::CSRGraph road = graph::gen::road({.scale = scale + 2, .seed = 1});
  const graph::CSRGraph kron =
      graph::gen::kronecker({.scale = scale, .edge_factor = 16, .seed = 1});
  const graph::CSRGraph sw = graph::gen::small_world(
      {.num_vertices = 1u << scale, .k = 5, .rewire_p = 0.1, .seed = 1});

  kernels::RunConfig base;
  base.device = gpusim::gtx_titan();

  auto roots_for = [&](const graph::CSRGraph& g) { return bench::first_roots(g, num_roots); };

  // ---------------------------------------------------------------
  bench::print_header("Ablation 1 — hybrid alpha/beta sweep (Algorithm 4)",
                      "simulated seconds; lower is better");
  std::printf("%-12s", "alpha\\beta");
  for (std::uint32_t beta : {64u, 256u, 512u, 2048u}) std::printf(" %10u", beta);
  std::printf("   graph\n");
  for (const auto* gp : {&kron, &sw}) {
    const auto& g = *gp;
    const char* name = gp == &kron ? "kron" : "smallworld";
    for (std::uint32_t alpha : {64u, 768u, 4096u, 1u << 20}) {
      std::printf("%-12u", alpha);
      for (std::uint32_t beta : {64u, 256u, 512u, 2048u}) {
        kernels::RunConfig c = base;
        c.roots = roots_for(g);
        c.hybrid.alpha = alpha;
        c.hybrid.beta = beta;
        std::printf(" %10.4f", kernels::run_hybrid(g, c).metrics.sim_seconds);
      }
      std::printf("   %s\n", name);
    }
  }
  std::printf("alpha = 2^20 disables reconsideration (pure work-efficient).\n");

  // ---------------------------------------------------------------
  bench::print_header("Ablation 2 — sampling gamma / n_samps sweep (Algorithm 5)",
                      "simulated seconds + chosen mode");
  std::printf("%-12s %-10s %12s %12s %8s\n", "graph", "gamma", "n_samps", "sim(s)",
              "mode");
  for (const auto* gp : {&road, &sw}) {
    const auto& g = *gp;
    const char* name = gp == &road ? "road" : "smallworld";
    for (double gamma : {1.0, 4.0, 64.0}) {
      for (std::uint32_t n_samps : {4u, 16u, 64u}) {
        kernels::RunConfig c = base;
        c.roots = roots_for(g);
        c.sampling.gamma = gamma;
        c.sampling.n_samps = n_samps;
        const auto r = kernels::run_sampling(g, c);
        std::printf("%-12s %-10.1f %12u %12.5f %8s\n", name, gamma, n_samps,
                    r.metrics.sim_seconds,
                    r.metrics.sampling_chose_edge_parallel ? "EP" : "WE");
      }
    }
  }
  // A wrong EP decision on the road network is rescued by the per-level
  // min_frontier guard (road frontiers never reach 512). Disabling the
  // guard exposes the raw penalty of the wrong choice.
  {
    kernels::RunConfig c = base;
    c.roots = roots_for(road);
    c.sampling.gamma = 64.0;
    c.sampling.n_samps = 16;
    c.sampling.min_frontier = 0;
    const auto r = kernels::run_sampling(road, c);
    std::printf("%-12s %-10.1f %12u %12.5f %8s   <- min_frontier guard OFF\n", "road",
                64.0, 16u, r.metrics.sim_seconds,
                r.metrics.sampling_chose_edge_parallel ? "EP" : "WE");
  }
  std::printf("paper: gamma=4 with 512 samples separates the classes cleanly.\n"
              "A wrong EP decision (gamma=64 on road) is absorbed by the >=512\n"
              "frontier guard; without the guard the penalty is the full\n"
              "edge-parallel mischoice cost of ablation 3.\n");

  // ---------------------------------------------------------------
  bench::print_header("Ablation 3 — mischoice cost asymmetry (§IV.B)",
                      "time of the wrong method / time of the right method");
  {
    kernels::RunConfig c = base;
    c.roots = roots_for(road);
    const double we_road = kernels::run_work_efficient(road, c).metrics.sim_seconds;
    const double ep_road = kernels::run_edge_parallel(road, c).metrics.sim_seconds;
    c.roots = roots_for(sw);
    const double we_sw = kernels::run_work_efficient(sw, c).metrics.sim_seconds;
    const double ep_sw = kernels::run_edge_parallel(sw, c).metrics.sim_seconds;
    std::printf("wrong edge-parallel on road network : %6.2fx slower (paper: >10x)\n",
                ep_road / we_road);
    std::printf("wrong work-efficient on small world : %6.2fx slower (paper: <=2.2x)\n",
                we_sw / ep_sw);
    std::printf("=> defaulting to work-efficient (as Algorithms 4/5 do) bounds the\n"
                "   worst case; defaulting to edge-parallel does not.\n");
  }

  // ---------------------------------------------------------------
  bench::print_header("Ablation 4 — thread blocks per SM (Jia et al. §III)",
                      "work-efficient kernel on kron; blocks sweep around #SMs = 14");
  std::printf("%-10s %12s\n", "blocks", "sim(s)");
  for (std::uint32_t blocks : {1u, 7u, 14u, 28u, 56u}) {
    kernels::RunConfig c = base;
    c.roots = roots_for(kron);
    c.device.num_sms = blocks;
    std::printf("%-10u %12.4f\n", blocks,
                kernels::run_work_efficient(kron, c).metrics.sim_seconds);
  }
  std::printf("fewer blocks than SMs serialize roots; more blocks than SMs cannot\n"
              "run concurrently on hardware (the model treats blocks as SM slots,\n"
              "so oversubscription shows the idealized upper bound).\n");

  // ---------------------------------------------------------------
  bench::print_header("Ablation 5 — direction-optimizing traversal (extension)",
                      "Beamer top-down/bottom-up vs the paper's kernels; simulated s");
  std::printf("%-12s %12s %12s %12s %12s\n", "graph", "edge-par", "work-eff", "hybrid",
              "dir-opt");
  for (const auto* gp : {&road, &kron, &sw}) {
    const auto& g = *gp;
    const char* name = gp == &road ? "road" : (gp == &kron ? "kron" : "smallworld");
    kernels::RunConfig c = base;
    c.roots = roots_for(g);
    const double ep = kernels::run_edge_parallel(g, c).metrics.sim_seconds;
    const double we = kernels::run_work_efficient(g, c).metrics.sim_seconds;
    const double hy = kernels::run_hybrid(g, c).metrics.sim_seconds;
    const double dir = kernels::run_direction_optimized(g, c).metrics.sim_seconds;
    std::printf("%-12s %12.5f %12.5f %12.5f %12.5f\n", name, ep, we, hy, dir);
  }
  std::printf("bottom-up wins where hubs make queue levels critical-path bound (kron);\n"
              "on uniform-degree small worlds the sigma rule forbids bottom-up's\n"
              "early exit, narrowing the win; road never triggers the switch.\n");

  // ---------------------------------------------------------------
  bench::print_header(
      "Ablation 6 — predecessor bitmap vs neighbor traversal (§IV.A)",
      "the storage-for-computation trade the paper resolves toward O(n)");
  std::printf("%-12s %14s %14s %16s %16s\n", "graph", "neighbor(s)", "bitmap(s)",
              "mem neighbor", "mem bitmap");
  for (const auto* gp : {&road, &kron, &sw}) {
    const auto& g = *gp;
    const char* name = gp == &road ? "road" : (gp == &kron ? "kron" : "smallworld");
    kernels::RunConfig c = base;
    c.roots = roots_for(g);
    const auto plain = kernels::run_work_efficient(g, c);
    c.use_predecessor_bitmap = true;
    const auto bitmap = kernels::run_work_efficient(g, c);
    std::printf("%-12s %14.5f %14.5f %13.1f MiB %13.1f MiB\n", name,
                plain.metrics.sim_seconds, bitmap.metrics.sim_seconds,
                plain.metrics.device_memory_high_water / 1048576.0,
                bitmap.metrics.device_memory_high_water / 1048576.0);
  }
  std::printf("the bitmap trims dependency-stage traffic but costs O(m) bits per\n"
              "block; the paper keeps the O(n) layout for scalability (\xc2\xa7IV.A).\n");

  // ---------------------------------------------------------------
  bench::print_header("Ablation 7 — multi-GPU root distribution (§V.D)",
                      "contiguous vs round-robin root assignment, multi-component graph, 4 nodes");
  {
    // The paper: "For graphs that have a larger number of connected
    // components an imbalance between GPUs is of course more probable."
    // Build exactly that case — one real component plus a tail of
    // isolated sensors at high ids. Contiguous id chunks then hand some
    // GPUs only free (isolated) roots.
    graph::GraphBuilder builder(
        static_cast<graph::VertexId>(road.num_vertices() * 2));
    for (graph::VertexId u = 0; u < road.num_vertices(); ++u) {
      for (graph::VertexId v : road.neighbors(u)) {
        if (u < v) builder.add_edge(u, v);
      }
    }
    const graph::CSRGraph lumpy = builder.build();

    kernels::RunConfig c = base;
    c.roots.resize(lumpy.num_vertices());
    std::iota(c.roots.begin(), c.roots.end(), graph::VertexId{0});
    c.collect_root_cycles = true;
    const auto run = kernels::run_work_efficient(lumpy, c);

    hbc::dist::ClusterConfig cluster;
    cluster.nodes = 4;
    const auto contiguous = hbc::dist::model_cluster_time(
        run.metrics.per_root_cycles, cluster, lumpy.num_vertices());
    cluster.distribution = hbc::dist::RootDistribution::RoundRobin;
    const auto interleaved = hbc::dist::model_cluster_time(
        run.metrics.per_root_cycles, cluster, lumpy.num_vertices());
    std::printf("graph: road component + equal-sized isolated tail (%u vertices)\n",
                lumpy.num_vertices());
    std::printf("contiguous : %.5f s compute\n", contiguous.compute_seconds);
    std::printf("round-robin: %.5f s compute (%.1f%% of contiguous)\n",
                interleaved.compute_seconds,
                100.0 * interleaved.compute_seconds /
                    std::max(contiguous.compute_seconds, 1e-12));
    std::printf("contiguous chunks strand whole GPUs on free isolated roots while\n"
                "others carry the component; interleaving restores the balance the\n"
                "paper's single-component analysis assumes.\n");
  }

  // ---------------------------------------------------------------
  bench::print_header("Ablation 8 — threads per block (occupancy)",
                      "work-efficient kernel; small frontiers cannot fill wide blocks");
  std::printf("%-10s %12s %12s\n", "threads", "road (s)", "kron (s)");
  for (std::uint32_t tpb : {64u, 128u, 256u, 512u, 1024u}) {
    kernels::RunConfig c = base;
    c.device.threads_per_block = tpb;
    c.roots = roots_for(road);
    const double t_road = kernels::run_work_efficient(road, c).metrics.sim_seconds;
    c.roots = roots_for(kron);
    const double t_kron = kernels::run_work_efficient(kron, c).metrics.sim_seconds;
    std::printf("%-10u %12.5f %12.5f\n", tpb, t_road, t_kron);
  }
  std::printf("road frontiers (~tens of vertices) saturate at narrow blocks —\n"
              "extra threads idle; kron's huge middle frontiers keep scaling\n"
              "with block width. The paper's 256-thread blocks are the middle\n"
              "ground its mixed workloads need.\n");
  return 0;
}
