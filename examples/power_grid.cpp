// Power-grid contingency analysis — another application the paper's
// introduction cites (power grid contingency analysis [24]): vertices
// with high betweenness are the grid's load-bearing buses; losing one
// reroutes (or strands) a disproportionate share of transmission paths.
//
// The demo builds a synthetic transmission grid (a road-like sparse mesh:
// grids are planar, low-degree, high-diameter — exactly the graph class
// where the paper's work-efficient kernel shines), ranks buses by BC,
// then simulates N-1 contingencies: drop each top bus and measure how
// much of the network disconnects or how far paths stretch.

#include <cstdio>

#include "hbc.hpp"

namespace {

using namespace hbc;
using graph::VertexId;

graph::CSRGraph remove_vertex(const graph::CSRGraph& g, VertexId victim) {
  graph::EdgeList edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (u == victim) continue;
    for (VertexId v : g.neighbors(u)) {
      if (u < v && v != victim) edges.push_back({u, v});
    }
  }
  return graph::build_csr(g.num_vertices(), edges);
}

}  // namespace

int main() {
  // Synthetic transmission grid: sparse planar mesh with loops.
  const graph::CSRGraph grid = graph::gen::road({.scale = 12, .extra_edge_fraction = 0.02,
                                                 .seed = 11});
  std::printf("synthetic grid: %s, diameter >= %u\n", grid.summary().c_str(),
              graph::pseudo_diameter(grid));

  // Rank buses by betweenness. The work-efficient strategy is the right
  // choice for this graph class (the sampling probe would conclude the
  // same, at a small cost).
  core::Options options;
  options.strategy = core::Strategy::WorkEfficient;
  const auto result = core::compute(grid, options);
  std::printf("exact BC in %.3f simulated GPU seconds (%.1f MTEPS)\n",
              result.time_seconds, result.teps / 1e6);

  const auto baseline_cc = graph::connected_components(grid);
  const auto critical = core::top_k(result.scores, 5);

  std::printf("\nN-1 contingency analysis of the 5 most central buses:\n");
  std::printf("%10s %14s %12s %16s\n", "bus", "BC score", "stranded", "diameter after");
  for (const auto& [bus, score] : critical) {
    const graph::CSRGraph damaged = remove_vertex(grid, bus);
    const auto cc = graph::connected_components(damaged);
    // Stranded load: vertices outside the largest surviving component
    // (excluding the removed bus itself, now isolated).
    const std::uint64_t stranded =
        grid.num_vertices() - 1 - cc.largest_size;
    std::printf("%10u %14.1f %12llu %16u\n", bus, score,
                static_cast<unsigned long long>(stranded),
                graph::pseudo_diameter(damaged));
  }

  // Contrast with a low-centrality bus: removing it must strand nothing.
  VertexId boring = 0;
  for (VertexId v = 0; v < grid.num_vertices(); ++v) {
    if (grid.degree(v) > 0 && result.scores[v] < result.scores[boring]) boring = v;
  }
  const auto cc = graph::connected_components(remove_vertex(grid, boring));
  std::printf("\ncontrol: removing low-BC bus %u strands %llu vertices"
              " (baseline components: %u)\n",
              boring,
              static_cast<unsigned long long>(grid.num_vertices() - 1 - cc.largest_size),
              baseline_cc.num_components);
  return 0;
}
