# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_logging[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_brandes[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_properties[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_edge_bc[1]_include.cmake")
include("/root/repo/build/tests/test_approx[1]_include.cmake")
include("/root/repo/build/tests/test_weighted[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_direction_optimized[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic_bc[1]_include.cmake")
include("/root/repo/build/tests/test_weighted_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_consistency_sweep[1]_include.cmake")
