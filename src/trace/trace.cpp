#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

namespace hbc::trace {

const char* to_string(Category category) noexcept {
  switch (category) {
    case kRun: return "run";
    case kRoot: return "root";
    case kPhase: return "phase";
    case kLevel: return "level";
    case kDecision: return "decision";
    case kFault: return "fault";
    case kCharge: return "charge";
    case kService: return "service";
    case kCompute: return "compute";
    case kDyn: return "dyn";
    default: return "?";
  }
}

namespace {

std::atomic<std::uint64_t> g_tracer_generation{1};

char phase_char(Phase phase) {
  switch (phase) {
    case Phase::Begin: return 'B';
    case Phase::End: return 'E';
    case Phase::Instant: return 'i';
    case Phase::Counter: return 'C';
  }
  return 'i';
}

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Microseconds with fixed 3-decimal nanosecond fraction: integer math
/// only, so the formatting is bit-stable across runs and platforms.
void append_ts(std::string& out, std::uint64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ts_ns / 1000),
                static_cast<unsigned long long>(ts_ns % 1000));
  out += buf;
}

void append_arg_value(std::string& out, const Arg& a) {
  char buf[40];
  switch (a.kind) {
    case Arg::Kind::U64:
      std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(a.value.u));
      out += buf;
      break;
    case Arg::Kind::I64:
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(a.value.i));
      out += buf;
      break;
    case Arg::Kind::F64:
      std::snprintf(buf, sizeof buf, "%.9g", a.value.f);
      out += buf;
      break;
    case Arg::Kind::Str:
      append_json_string(out, a.value.s ? a.value.s : "");
      break;
    case Arg::Kind::None:
      out += "null";
      break;
  }
}

void append_event(std::string& out, const Event& e) {
  out += "{\"name\":";
  append_json_string(out, e.name ? e.name : "?");
  out += ",\"cat\":";
  append_json_string(out, to_string(e.category));
  out += ",\"ph\":\"";
  out += phase_char(e.phase);
  out += "\",\"pid\":";
  out += std::to_string(e.pid);
  out += ",\"tid\":";
  out += std::to_string(e.tid);
  out += ",\"ts\":";
  append_ts(out, e.ts_ns);
  if (e.num_args > 0) {
    out += ",\"args\":{";
    for (std::uint8_t i = 0; i < e.num_args; ++i) {
      if (i > 0) out += ',';
      append_json_string(out, e.args[i].key ? e.args[i].key : "?");
      out += ':';
      append_arg_value(out, e.args[i]);
    }
    out += '}';
  }
  out += '}';
}

void append_metadata(std::string& out, const char* name, std::uint32_t pid,
                     std::uint32_t tid, bool with_tid, const std::string& value) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  if (with_tid) {
    out += ",\"tid\":";
    out += std::to_string(tid);
  }
  out += ",\"args\":{\"name\":";
  append_json_string(out, value.c_str());
  out += "}}";
}

}  // namespace

Tracer::Tracer(TracerConfig config)
    : config_(config),
      epoch_(std::chrono::steady_clock::now()),
      generation_(g_tracer_generation.fetch_add(1, std::memory_order_relaxed)) {}

std::shared_ptr<Sink> Tracer::make_sink(std::string name, std::uint32_t pid,
                                        std::uint32_t tid) {
  // Not make_shared: Sink's constructor is private to this friend.
  std::shared_ptr<Sink> sink(
      new Sink(std::move(name), pid, tid, config_.categories, config_.sink_capacity));
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink);
  return sink;
}

Sink* Tracer::thread_sink(const char* name_prefix) {
  struct Cached {
    std::uint64_t generation = 0;
    std::shared_ptr<Sink> sink;
  };
  // Keyed by the tracer's process-unique generation, not its address, so
  // a new Tracer allocated where a dead one lived can't hit a stale entry.
  thread_local Cached cached;
  if (cached.generation == generation_) return cached.sink.get();
  std::uint32_t tid = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tid = next_host_tid_++;
  }
  cached.sink = make_sink(std::string(name_prefix) + " " + std::to_string(tid),
                          kHostPid, tid);
  cached.generation = generation_;
  return cached.sink.get();
}

std::vector<Event> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  std::size_t total = 0;
  for (const auto& sink : sinks_) total += sink->events().size();
  out.reserve(total);
  for (const auto& sink : sinks_) {
    out.insert(out.end(), sink->events().begin(), sink->events().end());
  }
  return out;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& sink : sinks_) total += sink->events().size();
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& sink : sinks_) total += sink->dropped();
  return total;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string buf;
  buf += "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) buf += ",\n";
    first = false;
  };
  // Process/thread naming metadata first, in registration order.
  bool sim_named = false, host_named = false;
  for (const auto& sink : sinks_) {
    if (sink->pid() == kSimDevicePid && !sim_named) {
      sep();
      append_metadata(buf, "process_name", kSimDevicePid, 0, false, "simulated device");
      sim_named = true;
    }
    if (sink->pid() == kHostPid && !host_named) {
      sep();
      append_metadata(buf, "process_name", kHostPid, 0, false, "host");
      host_named = true;
    }
  }
  for (const auto& sink : sinks_) {
    sep();
    append_metadata(buf, "thread_name", sink->pid(), sink->tid(), true, sink->name());
  }
  for (const auto& sink : sinks_) {
    for (const Event& e : sink->events()) {
      sep();
      append_event(buf, e);
    }
  }
  buf += "\n],\"displayTimeUnit\":\"ms\"}\n";
  out << buf;
}

std::string Tracer::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

void Tracer::write_summary(std::ostream& out) const {
  struct Row {
    std::size_t order = 0;  // first-appearance rank, for stable output
    std::uint64_t count = 0;
    std::uint64_t spans = 0;
    std::uint64_t span_ns = 0;
  };
  std::map<std::pair<std::string, std::string>, Row> rows;  // (cat, name)
  std::size_t next_order = 0;
  std::uint64_t total_events = 0, total_dropped = 0;

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sink : sinks_) {
    total_dropped += sink->dropped();
    // Per-sink open-span stack: Begin/End pairs nest by construction.
    std::vector<const Event*> stack;
    for (const Event& e : sink->events()) {
      ++total_events;
      auto [it, inserted] =
          rows.try_emplace({to_string(e.category), e.name ? e.name : "?"});
      if (inserted) it->second.order = next_order++;
      Row& row = it->second;
      if (e.phase == Phase::Begin) {
        stack.push_back(&e);
        ++row.spans;
      } else if (e.phase == Phase::End) {
        if (!stack.empty()) {
          row.span_ns += e.ts_ns - stack.back()->ts_ns;
          stack.pop_back();
        }
      } else {
        ++row.count;
      }
    }
  }

  std::vector<const std::pair<const std::pair<std::string, std::string>, Row>*> ordered;
  ordered.reserve(rows.size());
  for (const auto& kv : rows) ordered.push_back(&kv);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->second.order < b->second.order; });

  char line[160];
  std::snprintf(line, sizeof line, "%-10s %-22s %10s %10s %14s\n", "category", "name",
                "events", "spans", "span ms");
  out << line;
  for (const auto* kv : ordered) {
    const Row& r = kv->second;
    std::snprintf(line, sizeof line, "%-10s %-22s %10llu %10llu %14.3f\n",
                  kv->first.first.c_str(), kv->first.second.c_str(),
                  static_cast<unsigned long long>(r.count),
                  static_cast<unsigned long long>(r.spans),
                  static_cast<double>(r.span_ns) / 1e6);
    out << line;
  }
  std::snprintf(line, sizeof line, "total: %llu events in %zu sinks (%llu dropped)\n",
                static_cast<unsigned long long>(total_events), sinks_.size(),
                static_cast<unsigned long long>(total_dropped));
  out << line;
}

std::string Tracer::summary() const {
  std::ostringstream out;
  write_summary(out);
  return out.str();
}

}  // namespace hbc::trace
