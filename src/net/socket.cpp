#include "net/socket.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace hbc::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const Endpoint& ep) {
  throw NetError(what + "(" + ep.str() + "): " + std::strerror(errno));
}

void set_nonblocking(int fd, const Endpoint& ep) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl", ep);
  }
}

sockaddr_un unix_addr(const Endpoint& ep) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  // parse() already rejected over-long paths; strncpy keeps the NUL.
  std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
  return addr;
}

sockaddr_in tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) == 1) return addr;
  // Not a literal address: resolve the name (IPv4 for simplicity — the
  // default deployment shape is Unix-domain anyway).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(ep.host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw NetError("resolve(" + ep.str() + "): " +
                   (rc != 0 ? ::gai_strerror(rc) : "no addresses"));
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::Unix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) throw NetError("endpoint '" + spec + "': empty unix path");
    if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw NetError("endpoint '" + spec + "': unix path longer than " +
                     std::to_string(sizeof(sockaddr_un{}.sun_path) - 1) + " bytes");
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Kind::Tcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw NetError("endpoint '" + spec + "': expected tcp:host:port");
    }
    ep.host = rest.substr(0, colon);
    unsigned long port = 0;
    try {
      std::size_t used = 0;
      port = std::stoul(rest.substr(colon + 1), &used);
      if (used != rest.size() - colon - 1) port = 0;
    } catch (const std::exception&) {
      port = 0;
    }
    if (port == 0 || port > 65535) {
      throw NetError("endpoint '" + spec + "': invalid port");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  throw NetError("endpoint '" + spec +
                 "': expected unix:/path or tcp:host:port");
}

std::string Endpoint::str() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_on(const Endpoint& ep, int backlog) {
  const int family = ep.kind == Endpoint::Kind::Unix ? AF_UNIX : AF_INET;
  Socket s(::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) throw_errno("socket", ep);

  if (ep.kind == Endpoint::Kind::Unix) {
    // A previous coordinator's socket file would make bind fail with
    // EADDRINUSE even though nobody is listening; remove it. A live
    // listener is still protected on the connect side (workers would reach
    // whichever process bound last, with a fingerprint handshake to catch
    // true confusion).
    ::unlink(ep.path.c_str());
    sockaddr_un addr = unix_addr(ep);
    if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      throw_errno("bind", ep);
    }
  } else {
    const int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcp_addr(ep);
    if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      throw_errno("bind", ep);
    }
  }
  if (::listen(s.fd(), backlog) < 0) throw_errno("listen", ep);
  set_nonblocking(s.fd(), ep);
  return s;
}

Socket connect_to(const Endpoint& ep) {
  const int family = ep.kind == Endpoint::Kind::Unix ? AF_UNIX : AF_INET;
  Socket s(::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) throw_errno("socket", ep);

  int rc = 0;
  if (ep.kind == Endpoint::Kind::Unix) {
    sockaddr_un addr = unix_addr(ep);
    rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr = tcp_addr(ep);
    rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc < 0) throw_errno("connect", ep);
  if (ep.kind == Endpoint::Kind::Tcp) {
    const int one = 1;
    ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  set_nonblocking(s.fd(), ep);
  return s;
}

Socket accept_on(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd >= 0) {
    Socket s(fd);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    return s;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED || errno == EINTR) {
    return Socket{};
  }
  throw NetError(std::string("accept: ") + std::strerror(errno));
}

int poll_wait(std::vector<pollfd>& fds, int timeout_ms) {
  for (;;) {
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n >= 0) return n;
    if (errno != EINTR) {
      throw NetError(std::string("poll: ") + std::strerror(errno));
    }
  }
}

Conn::Io Conn::pump_read() {
  if (!sock_.valid()) return Io::Failed;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(sock_.fd(), buf, sizeof(buf));
    if (n > 0) {
      in_.insert(in_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) return Io::Closed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Io::Ok;
    if (errno == EINTR) continue;
    return Io::Failed;
  }
}

Conn::Io Conn::pump_write() {
  if (!sock_.valid()) return Io::Failed;
  while (out_pos_ < out_.size()) {
    // MSG_NOSIGNAL: a peer that died mid-write must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t n = ::send(sock_.fd(), out_.data() + out_pos_,
                             out_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return Io::Ok;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE and friends: peer is gone.
    return errno == EPIPE || errno == ECONNRESET ? Io::Closed : Io::Failed;
  }
  out_.clear();
  out_pos_ = 0;
  return Io::Ok;
}

void Conn::send(const std::vector<std::uint8_t>& frame_bytes) {
  if (chaos_) {
    chaos_->on_send(frame_bytes, out_);
    return;
  }
  out_.insert(out_.end(), frame_bytes.begin(), frame_bytes.end());
}

void Conn::arm_chaos(std::shared_ptr<const ChaosPlan> plan, std::uint64_t stream_id) {
  chaos_ = plan ? std::make_unique<ChaosInjector>(std::move(plan), stream_id)
                : nullptr;
}

void Conn::pump_chaos() {
  if (chaos_) chaos_->release_due(out_);
}

void Conn::enforce_frame_deadline() const {
  if (!frame_overdue()) return;
  throw NetError("frame deadline (" + std::to_string(frame_deadline_.count()) +
                 "ms) exceeded by " + peer_ +
                 ": partial frame stuck at the head of the stream");
}

wire::DecodeStatus Conn::next_frame(wire::Frame& frame) {
  if (poisoned_ != wire::DecodeStatus::Ok) return poisoned_;
  std::span<const std::uint8_t> pending(in_.data() + in_pos_, in_.size() - in_pos_);
  std::size_t consumed = 0;
  const wire::DecodeStatus s = wire::extract_frame(pending, frame, consumed);
  if (s == wire::DecodeStatus::Ok) {
    in_pos_ += consumed;
    partial_ = false;
    // Compact once the consumed prefix dominates, amortizing the memmove.
    if (in_pos_ > 4096 && in_pos_ * 2 > in_.size()) {
      in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(in_pos_));
      in_pos_ = 0;
    }
    return s;
  }
  if (s != wire::DecodeStatus::NeedMore) {
    poisoned_ = s;
    return s;
  }
  // NeedMore: track how long a partial frame has been dribbling in so the
  // frame deadline can cull a slow-loris peer.
  if (in_pos_ == in_.size()) {
    partial_ = false;  // nothing buffered at all — an idle peer is fine
  } else if (!partial_) {
    partial_ = true;
    partial_since_ = std::chrono::steady_clock::now();
  }
  return s;
}

}  // namespace hbc::net
