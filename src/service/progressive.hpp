#pragma once

// service::progressive — accuracy-contract serving types and the
// refinable result cache (docs/serving.md § Accuracy contracts,
// DESIGN.md §11).
//
// A Request may carry a QueryBudget instead of (or alongside) exact
// options. An active budget switches the service onto the progressive
// path: the adaptive controller computes root strata (core::approx)
// rung by rung — 256, 512, 1024, ... roots with the default plan —
// until the contract is met, and every Response carries an Estimate
// describing what the caller actually got. With allow_refinement the
// service answers at rung 0 and keeps upgrading the cached estimate in
// the background, at lower priority than foreground queries.
//
// The ApproxCache is the refinable complement of ResultCache: an entry
// holds the raw per-stratum fold (core::RefinableEstimate), so a later
// query with a stricter contract upgrades it in place by computing only
// the additional strata — bitwise-identical to a from-scratch run at
// the larger root count. Entries are keyed by fingerprint prefix +
// core::approx_signature, so mutation/eviction invalidate by the same
// prefix discipline as the exact cache; invalidation both unlinks the
// entry and flags it, and background refinement drops flagged entries
// instead of resurrecting them.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/approx.hpp"
#include "core/bc.hpp"

namespace hbc::service {

/// The accuracy/latency contract of one request. Default-constructed
/// (inactive) budgets leave the request on the classic exact path with
/// byte-identical options signatures — the deprecated-shim guarantee.
struct QueryBudget {
  /// Target relative standard error (inter-stratum; see core::approx).
  /// The controller adds rungs until the reported error is at or below
  /// this. 0 = no accuracy clause.
  double accuracy_target = 0.0;
  /// Total submit→response budget. Supersedes the deprecated flat
  /// Request::timeout when set; 0 defers to it.
  std::chrono::milliseconds deadline{0};
  /// Hard cap on sampled roots (rounded up to a stratum boundary).
  /// 0 = no cap (the graph's vertex count). A budget with only a cap
  /// behaves like a deterministic sampled query that can later be
  /// upgraded in place.
  std::uint32_t max_roots = 0;
  /// Serve the first rung synchronously and keep refining toward the
  /// contract in the background (Response::estimate.refining = true).
  bool allow_refinement = false;

  /// An active budget routes the request onto the progressive path.
  bool active() const noexcept { return accuracy_target > 0.0 || max_roots > 0; }
};

/// What an approximate response actually delivered. Present on every
/// budgeted response; absent (nullopt) on classic exact responses.
struct Estimate {
  /// Sampled roots folded into the served scores.
  std::size_t roots_used = 0;
  /// Reported relative standard error: the running minimum across folds
  /// (monotone non-increasing rung over rung), exactly 0 when saturated.
  /// Meaningful only from rung 0 (two strata) onward — the service never
  /// publishes earlier.
  double stderr_est = 0.0;
  /// Highest completed refinement rung (0 = base).
  std::uint32_t rung = 0;
  /// Background refinement toward a stricter contract is queued or
  /// running; a later identical query may be served a better rung.
  bool refining = false;
};

/// Effective root cap of a budget on an n-vertex graph.
std::size_t effective_root_cap(const QueryBudget& budget, std::size_t n);

/// Whether a published estimate satisfies a budget's contract. Estimates
/// are only published from rung 0 onward, so stderr_est is meaningful.
bool contract_met(const Estimate& estimate, const QueryBudget& budget,
                  std::size_t n);

/// Canonical in-flight-coalescing suffix: two budgeted requests share a
/// leader only when their contracts match (the approx-cache key itself
/// stays contract-free so every contract refines one entry).
std::string budget_suffix(const QueryBudget& budget);

/// One refinable cached estimate. Lifetime is shared between the cache,
/// foreground upgraders, and the background refinement queue.
///
/// Locking: `work_mu` serializes upgraders — strata are computed while
/// holding it (long); `mu` guards the published state below it (short).
/// Never acquire `work_mu` while holding `mu`.
struct ApproxEntry {
  std::string key;
  std::uint64_t fingerprint = 0;

  std::mutex work_mu;

  std::mutex mu;
  /// Unlinked by mutation/eviction/LRU; background refinement must drop
  /// the entry instead of resurrecting it. Foreground jobs that already
  /// hold their graph snapshot may still finish (the snapshot semantics
  /// of in-flight queries), but the entry is unreachable for serving.
  bool invalidated = false;
  /// Background refinement jobs referencing this entry that are queued
  /// or running (reported as Estimate::refining while > 0).
  std::uint32_t refine_pending = 0;
  core::RefinableEstimate est;
  /// Finalized scores at the last published fold; null until rung 0
  /// completes (or the contract terminates earlier).
  std::shared_ptr<const core::BCResult> published;
  Estimate info;
  /// Accumulated per-stratum compute seconds (published result metadata).
  double accum_seconds = 0.0;

  /// Cache-internal byte accounting — guarded by ApproxCache::mu_, not
  /// by `mu`. Touched only by the owning cache.
  std::size_t accounted_bytes = 0;
};

/// Byte-budgeted LRU map of ApproxEntry, internally synchronized (the
/// background refinement thread reaches it without the service lock).
/// Budget 0 disables retention: get_or_create then hands out detached
/// entries that are never linked into the map.
class ApproxCache {
 public:
  explicit ApproxCache(std::size_t budget_bytes) : budget_(budget_bytes) {}

  /// Lookup + LRU touch. Never returns an invalidated entry.
  std::shared_ptr<ApproxEntry> get(const std::string& key);

  /// Lookup or insert a fresh estimate for (n, plan, seed). `created` is
  /// set when a new entry was made (including detached budget-0 ones).
  std::shared_ptr<ApproxEntry> get_or_create(const std::string& key,
                                             std::size_t n,
                                             const core::StratumPlan& plan,
                                             std::uint64_t seed,
                                             std::uint64_t fingerprint,
                                             bool& created);

  /// Re-account an entry after a fold grew it; evicts LRU entries over
  /// budget (never `keep`). Call WITHOUT holding any entry mutex.
  void note_growth(const std::shared_ptr<ApproxEntry>& keep);

  /// Unlink + flag every entry whose key starts with `prefix` (the
  /// fingerprint-prefix invalidation discipline). Returns the count.
  std::size_t invalidate_prefix(const std::string& prefix);

  std::size_t size() const;
  std::size_t bytes() const;
  std::size_t budget_bytes() const noexcept { return budget_; }
  std::uint64_t evictions() const;

 private:
  /// Estimated footprint of an entry (est arrays + published scores).
  static std::size_t entry_bytes(ApproxEntry& e);
  void evict_over_budget_locked(const std::shared_ptr<ApproxEntry>& keep);

  mutable std::mutex mu_;
  std::size_t budget_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  /// Front = most recently used.
  std::list<std::shared_ptr<ApproxEntry>> lru_;
  std::unordered_map<std::string, std::list<std::shared_ptr<ApproxEntry>>::iterator>
      index_;
};

}  // namespace hbc::service
