file(REMOVE_RECURSE
  "CMakeFiles/test_direction_optimized.dir/test_direction_optimized.cpp.o"
  "CMakeFiles/test_direction_optimized.dir/test_direction_optimized.cpp.o.d"
  "test_direction_optimized"
  "test_direction_optimized.pdb"
  "test_direction_optimized[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_direction_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
