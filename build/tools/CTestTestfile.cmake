# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_bc_generator "/root/repo/build/tools/hbc" "gen:smallworld:10" "--strategy" "sampling" "--top" "5")
set_tests_properties(cli_bc_generator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bc_approx "/root/repo/build/tools/hbc" "gen:scalefree:11" "--roots" "64" "--strategy" "hybrid" "--normalize")
set_tests_properties(cli_bc_approx PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bc_lcc "/root/repo/build/tools/hbc" "gen:kron:10" "--lcc" "--strategy" "work-efficient" "--top" "3")
set_tests_properties(cli_bc_lcc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/hbc-info" "gen:road:10")
set_tests_properties(cli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen_then_load "sh" "-c" "/root/repo/build/tools/hbc-gen delaunay 9 /root/repo/build/tools/t.graph && /root/repo/build/tools/hbc /root/repo/build/tools/t.graph --strategy cpu --top 2")
set_tests_properties(cli_gen_then_load PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_strategy "/root/repo/build/tools/hbc" "gen:road:8" "--strategy" "bogus")
set_tests_properties(cli_rejects_bad_strategy PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_missing_file "/root/repo/build/tools/hbc" "/nonexistent.mtx")
set_tests_properties(cli_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_weighted "/root/repo/build/tools/hbc" "gen:smallworld:10" "--weighted" "1:3" "--roots" "32" "--top" "3")
set_tests_properties(cli_weighted PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_binary_roundtrip "sh" "-c" "/root/repo/build/tools/hbc-gen kron 10 /root/repo/build/tools/t.hbc && /root/repo/build/tools/hbc /root/repo/build/tools/t.hbc --strategy work-efficient --roots 32 --top 2")
set_tests_properties(cli_binary_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
