#include "core/teps.hpp"

#include "graph/algorithms.hpp"

namespace hbc::core {

double teps_bc(const graph::CSRGraph& g, std::uint64_t roots_processed, double seconds) {
  if (seconds <= 0.0 || roots_processed == 0) return 0.0;
  return static_cast<double>(g.num_undirected_edges()) *
         static_cast<double>(roots_processed) / seconds;
}

double teps_bc_adjusted(const graph::CSRGraph& g, std::uint64_t roots_processed,
                        double seconds) {
  const double nominal = teps_bc(g, roots_processed, seconds);
  const graph::VertexId n = g.num_vertices();
  if (n == 0) return 0.0;
  std::uint64_t isolated = 0;
  for (graph::VertexId v = 0; v < n; ++v) {
    if (g.degree(v) == 0) ++isolated;
  }
  const double connected_fraction =
      static_cast<double>(n - isolated) / static_cast<double>(n);
  return nominal * connected_fraction;
}

double as_mteps(double teps) noexcept { return teps / 1e6; }
double as_gteps(double teps) noexcept { return teps / 1e9; }

}  // namespace hbc::core
