#pragma once

// Admission control for the BC query service: a bounded MPMC job queue
// with a configurable full-queue policy and per-request deadlines.
//
// Admission is two-phase so the service can decide the final cache key
// before a job becomes visible to workers:
//
//   1. admit(options, deadline)  — applies the policy against the current
//      depth and *reserves* a slot (Shed mutates `options` to a cheaper
//      approximate configuration first). Block waits here for space; this
//      wait is the service's backpressure point.
//   2. push(job)                 — converts the reservation into a queued
//      job, or cancel() releases it (the submitter found a cache hit or an
//      in-flight twin after the downgrade changed the key).
//
// pop() blocks until a job or shutdown. close() stops new admissions but
// lets workers drain what was already queued, so every admitted request
// still gets a response.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "core/bc.hpp"

namespace hbc::service {

enum class AdmissionPolicy {
  Block,   // submitter waits for queue space (backpressure)
  Reject,  // fail fast with QueueFull
  Shed,    // admit over the bound, but downgrade to a cheap approximation
};

const char* to_string(AdmissionPolicy policy) noexcept;

/// Parse "block" | "reject" | "shed"; throws std::invalid_argument.
AdmissionPolicy admission_policy_from_string(const std::string& name);

enum class Admit {
  Admitted,          // slot reserved, job unchanged
  Shed,              // slot reserved, options downgraded (queue was full)
  RejectedFull,      // Reject policy, queue full
  RejectedDeadline,  // Block policy, deadline passed while waiting for space
  RejectedClosed,    // service stopping
};

struct AdmissionConfig {
  std::size_t max_queue_depth = 64;
  AdmissionPolicy policy = AdmissionPolicy::Block;
  /// Shed policy: exact requests are downgraded to Strategy::Sampling with
  /// this many sampled roots (clamped to the request's own sample_roots if
  /// that is already smaller).
  std::uint32_t shed_sample_roots = 64;
};

/// The Shed downgrade: turn an (expensive) request into the cheapest
/// configuration that still estimates the same scores — the paper's
/// Algorithm 5 sampling kernel over `shed_sample_roots` sampled roots.
/// Requests that are already at most that cheap are returned unchanged.
core::Options shed_downgrade(core::Options options, std::uint32_t shed_sample_roots);

template <typename Job>
class AdmissionQueue {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionQueue(AdmissionConfig config) : cfg_(config) {}

  const AdmissionConfig& config() const noexcept { return cfg_; }

  /// Phase 1: apply the policy and reserve a slot. May block (Block
  /// policy) until space, `deadline`, or close(); may mutate `options`
  /// (Shed policy on a full queue). `deadline` uses Clock::time_point::max()
  /// for "none".
  Admit admit(core::Options& options, Clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return Admit::RejectedClosed;
    if (occupancy() < cfg_.max_queue_depth) {
      ++reserved_;
      return Admit::Admitted;
    }
    switch (cfg_.policy) {
      case AdmissionPolicy::Reject:
        ++rejected_full_;
        return Admit::RejectedFull;
      case AdmissionPolicy::Shed:
        options = shed_downgrade(std::move(options), cfg_.shed_sample_roots);
        ++reserved_;  // deliberately over the bound: shed work is cheap
        ++shed_;
        return Admit::Shed;
      case AdmissionPolicy::Block:
        break;
    }
    const bool got_space = space_.wait_until(lock, deadline, [this] {
      return closed_ || occupancy() < cfg_.max_queue_depth;
    });
    if (closed_) return Admit::RejectedClosed;
    if (!got_space) {
      ++rejected_deadline_;
      return Admit::RejectedDeadline;
    }
    ++reserved_;
    return Admit::Admitted;
  }

  /// Phase 2a: enqueue a job under a reservation from admit().
  void push(Job job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --reserved_;
      q_.push_back(std::move(job));
      peak_depth_ = std::max(peak_depth_, q_.size());
    }
    ready_.notify_one();
  }

  /// Phase 2b: release a reservation without enqueueing.
  void cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --reserved_;
    }
    space_.notify_one();
  }

  /// Worker side: blocks for the next job; nullopt once closed and drained.
  std::optional<Job> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    Job job = std::move(q_.front());
    q_.pop_front();
    lock.unlock();
    space_.notify_one();
    return job;
  }

  /// Stop admitting; wake blocked submitters and draining workers.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    space_.notify_all();
    ready_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  std::size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }

  std::uint64_t rejected_full() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_full_;
  }

  std::uint64_t rejected_deadline() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_deadline_;
  }

  std::uint64_t shed_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shed_;
  }

 private:
  /// Queued plus reserved-but-not-yet-pushed, the quantity the bound caps.
  std::size_t occupancy() const { return q_.size() + reserved_; }

  AdmissionConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable space_;  // signalled on pop/cancel/close
  std::condition_variable ready_;  // signalled on push/close
  std::deque<Job> q_;
  std::size_t reserved_ = 0;
  std::size_t peak_depth_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t rejected_deadline_ = 0;
  std::uint64_t shed_ = 0;
  bool closed_ = false;
};

}  // namespace hbc::service
