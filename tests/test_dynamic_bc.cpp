// Dynamic BC maintenance: every update sequence must leave scores equal
// to a from-scratch Brandes run, while the affected-source pruning
// actually skips work on same-level updates.

#include <gtest/gtest.h>

#include "cpu/brandes.hpp"
#include "cpu/dynamic_bc.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::Edge;
using graph::VertexId;

void expect_matches_recompute(const cpu::DynamicBC& dynamic) {
  const auto fresh = cpu::brandes(dynamic.graph()).bc;
  ASSERT_EQ(dynamic.scores().size(), fresh.size());
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    EXPECT_NEAR(dynamic.scores()[v], fresh[v], 1e-7 * std::max(1.0, fresh[v]))
        << "vertex " << v;
  }
}

TEST(DynamicBC, InsertBridgeUpdatesScores) {
  // Two paths joined by a new bridge: the bridge endpoints' BC jumps.
  const CSRGraph g = graph::build_csr(6, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  cpu::DynamicBC dyn(g);
  EXPECT_TRUE(dyn.insert_edge(2, 3));
  expect_matches_recompute(dyn);
  EXPECT_GT(dyn.scores()[2], 0.0);
  EXPECT_GT(dyn.scores()[3], 0.0);
  EXPECT_EQ(dyn.graph().num_undirected_edges(), 5u);
}

TEST(DynamicBC, RemoveBridgeUpdatesScores) {
  const CSRGraph g = graph::build_csr(
      6, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  cpu::DynamicBC dyn(g);
  EXPECT_TRUE(dyn.remove_edge(2, 3));
  expect_matches_recompute(dyn);
  // Path split in two: the former bridge interiors lose most traffic.
  EXPECT_LT(dyn.scores()[2], 3.0);
}

TEST(DynamicBC, DuplicateInsertAndMissingRemoveAreNoOps) {
  const CSRGraph g = graph::gen::figure1_graph();
  cpu::DynamicBC dyn(g);
  const auto before = dyn.scores();
  EXPECT_FALSE(dyn.insert_edge(0, 1));  // already present
  EXPECT_FALSE(dyn.remove_edge(0, 8));  // absent
  EXPECT_FALSE(dyn.insert_edge(3, 3));  // self loop
  EXPECT_EQ(dyn.scores(), before);
  EXPECT_EQ(dyn.update_stats().updates, 0u);
}

TEST(DynamicBC, RejectsDirectedGraphs) {
  // The affected-source level test reads d(s,u) off a BFS *from* u, which
  // equals d(s,u) only under undirected symmetry — a directed graph would
  // be silently mis-pruned, so the constructor must refuse it outright.
  const CSRGraph directed = graph::build_csr(
      4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}}, {.symmetrize = false});
  ASSERT_FALSE(directed.undirected());
  EXPECT_THROW(cpu::DynamicBC{directed}, std::invalid_argument);
}

TEST(DynamicBC, OutOfRangeThrows) {
  cpu::DynamicBC dyn(graph::gen::figure1_graph());
  EXPECT_THROW(dyn.insert_edge(0, 99), std::out_of_range);
  EXPECT_THROW(dyn.remove_edge(99, 0), std::out_of_range);
}

TEST(DynamicBC, SameLevelInsertSkipsNonEndpointSources) {
  // Star with leaves 1..4: a chord between two leaves connects vertices
  // at equal depth from every OTHER source (skippable), but the two
  // endpoints themselves see their mutual distance drop 2 -> 1 and must
  // be recomputed.
  const CSRGraph g = graph::build_csr(
      5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  cpu::DynamicBC dyn(g);
  EXPECT_TRUE(dyn.insert_edge(1, 2));
  expect_matches_recompute(dyn);
  EXPECT_EQ(dyn.update_stats().sources_recomputed, 2u);  // sources 1 and 2
  EXPECT_EQ(dyn.update_stats().sources_skipped, 3u);     // 0, 3, 4
}

TEST(DynamicBC, ConnectingComponentsRecomputesReachableSources) {
  const CSRGraph g = graph::build_csr(4, std::vector<Edge>{{0, 1}, {2, 3}});
  cpu::DynamicBC dyn(g);
  EXPECT_TRUE(dyn.insert_edge(1, 2));
  expect_matches_recompute(dyn);
  // Every source sees the new connectivity.
  EXPECT_EQ(dyn.update_stats().sources_recomputed, 4u);
}

TEST(DynamicBC, RandomUpdateSequenceMatchesRecompute) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 60, .k = 2, .seed = 3});
  cpu::DynamicBC dyn(g);
  util::Xoshiro256 rng(17);
  int applied = 0;
  for (int step = 0; step < 20; ++step) {
    const auto u = static_cast<VertexId>(rng.next_below(60));
    const auto v = static_cast<VertexId>(rng.next_below(60));
    if (u == v) continue;
    const auto nbrs = dyn.graph().neighbors(u);
    const bool present = std::binary_search(nbrs.begin(), nbrs.end(), v);
    if (present ? dyn.remove_edge(u, v) : dyn.insert_edge(u, v)) ++applied;
  }
  EXPECT_GT(applied, 5);
  expect_matches_recompute(dyn);
  EXPECT_EQ(dyn.update_stats().updates, static_cast<std::uint64_t>(applied));
}

TEST(DynamicBC, PruningSavesWorkOnLocalUpdates) {
  // Dense local clusters: a within-cluster chord is same-level for most
  // sources, so the updater should skip a visible fraction.
  const CSRGraph g = graph::gen::small_world(
      {.num_vertices = 200, .k = 4, .rewire_p = 0.0, .seed = 1});
  cpu::DynamicBC dyn(g);
  // Connect vertices 0 and 2 (already at distance 1? k=4 ring covers
  // offsets 1..4, so 0-2 exists; use offset 7 instead).
  EXPECT_TRUE(dyn.insert_edge(0, 7));
  expect_matches_recompute(dyn);
  EXPECT_GT(dyn.update_stats().sources_skipped, 0u);
}

}  // namespace
