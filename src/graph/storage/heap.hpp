#pragma once

// Heap-vector storage backing — the original CSRGraph representation,
// now one policy among three. Still the right choice for graphs built
// programmatically (generators, dyn::VersionedGraph epochs) and for
// anything comfortably smaller than RAM.

#include <memory>
#include <span>
#include <vector>

#include "graph/storage/storage.hpp"

namespace hbc::graph::storage {

class HeapStorage final : public Storage {
 public:
  /// Takes ownership of prebuilt CSR arrays and validates them
  /// (throws std::invalid_argument on violations — API misuse, not
  /// file corruption).
  HeapStorage(std::vector<EdgeOffset> row_offsets, std::vector<VertexId> col_indices,
              bool undirected);

  std::span<const VertexId> col_indices() const override { return cols_; }

  std::size_t resident_bytes() const noexcept override {
    return rows_store_.size() * sizeof(EdgeOffset) +
           cols_.size() * sizeof(VertexId) + edge_sources_resident_bytes();
  }
  std::size_t adjacency_bytes() const noexcept override {
    return cols_.size() * sizeof(VertexId);
  }

 private:
  std::uint64_t compute_fingerprint() const override;

  std::vector<EdgeOffset> rows_store_;
  std::vector<VertexId> cols_;
};

}  // namespace hbc::graph::storage
