// Storage-policy layer tests (docs/storage.md): varint/zigzag codec
// properties, the three backings (heap, mmap'd .hbcg, varint-compressed)
// agreeing on structure and fingerprint, defensive handling of corrupt
// and truncated files (typed FormatError, never UB), MmapFile itself,
// and the dyn/service integration points (commit_to_file / reopen,
// load_graph_file residency).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "cpu/brandes.hpp"
#include "dyn/versioned_graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/storage/compressed.hpp"
#include "graph/storage/heap.hpp"
#include "graph/storage/mmap_csr.hpp"
#include "graph/storage/storage.hpp"
#include "graph/storage/varint.hpp"
#include "service/service.hpp"
#include "util/mmap_file.hpp"
#include "util/rng.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::EdgeOffset;
using graph::VertexId;
namespace st = graph::storage;

std::string tmp_path(const std::string& name) { return testing::TempDir() + name; }

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Compare two graphs edge-for-edge (same vertex order, same neighbor
/// order — the property that makes BC bitwise-identical across backings).
void expect_same_structure(const CSRGraph& a, const CSRGraph& b, const char* label) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << label;
  ASSERT_EQ(a.num_directed_edges(), b.num_directed_edges()) << label;
  EXPECT_EQ(a.undirected(), b.undirected()) << label;
  const auto ra = a.row_offsets();
  const auto rb = b.row_offsets();
  ASSERT_EQ(ra.size(), rb.size()) << label;
  EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(EdgeOffset)))
      << label;
  const auto ca = a.col_indices();
  const auto cb = b.col_indices();
  ASSERT_EQ(ca.size(), cb.size()) << label;
  if (!ca.empty()) {
    EXPECT_EQ(0, std::memcmp(ca.data(), cb.data(), ca.size() * sizeof(VertexId)))
        << label;
  }
  EXPECT_EQ(a.fingerprint(), b.fingerprint()) << label;
}

// ---------------------------------------------------------------------------
// Varint / zigzag codec.

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  (1ull << 63),
                                  ~0ull};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    st::put_u64(buf, v);
    ASSERT_LE(buf.size(), static_cast<std::size_t>(st::kMaxVarintBytes));
    std::uint64_t back = 0;
    const std::uint8_t* end = st::get_u64(buf.data(), buf.data() + buf.size(), back);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(end, buf.data() + buf.size()) << v;
    EXPECT_EQ(back, v);
  }
  // Length economics: one byte below 128, two through 16383.
  std::vector<std::uint8_t> one, two;
  st::put_u64(one, 127);
  st::put_u64(two, 128);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
}

TEST(Varint, TruncationRejected) {
  std::vector<std::uint8_t> buf;
  st::put_u64(buf, ~0ull);  // 10-byte encoding
  std::uint64_t v = 0;
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_EQ(st::get_u64(buf.data(), buf.data() + cut, v), nullptr) << cut;
  }
  EXPECT_NE(st::get_u64(buf.data(), buf.data() + buf.size(), v), nullptr);
}

TEST(Varint, OverlongRejected) {
  // Continuation bit never clears within the 10-byte limit.
  std::vector<std::uint8_t> runaway(16, 0x80);
  std::uint64_t v = 0;
  EXPECT_EQ(st::get_u64(runaway.data(), runaway.data() + runaway.size(), v), nullptr);
  // A 10th byte carrying bits beyond 2^64 is invalid even when terminated.
  std::vector<std::uint8_t> wide(9, 0x80);
  wide.push_back(0x02);  // bit 65
  EXPECT_EQ(st::get_u64(wide.data(), wide.data() + wide.size(), v), nullptr);
}

TEST(Varint, ZigzagRoundTrip) {
  const std::int64_t values[] = {0,  1,  -1, 2,  -2, 63, -64, 1'000'000,
                                 -1'000'000,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(st::unzigzag(st::zigzag(v)), v);
  }
  // Small magnitudes of either sign stay small (single byte).
  std::vector<std::uint8_t> buf;
  st::put_u64(buf, st::zigzag(-3));
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Varint, AdjacencyCodecPropertyRandom) {
  util::Xoshiro256 rng(99);
  for (int round = 0; round < 50; ++round) {
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng.next_below(2000));
    const std::uint32_t v = static_cast<std::uint32_t>(rng.next_below(n));
    const std::uint64_t degree = rng.next_below(64);
    std::vector<std::uint32_t> neighbors;
    for (std::uint64_t i = 0; i < degree; ++i) {
      // Unsorted, duplicates allowed: the codec must preserve order, not
      // canonicalize.
      neighbors.push_back(static_cast<std::uint32_t>(rng.next_below(n)));
    }
    std::vector<std::uint8_t> buf;
    st::encode_adjacency(buf, v, neighbors);
    std::vector<std::uint32_t> decoded(neighbors.size());
    const std::uint8_t* end = st::decode_adjacency(
        buf.data(), buf.data() + buf.size(), v, degree, n, decoded.data());
    ASSERT_NE(end, nullptr);
    EXPECT_EQ(end, buf.data() + buf.size());
    EXPECT_EQ(decoded, neighbors);
  }
}

TEST(Varint, AdjacencyDegreeZeroAndMaxDegree) {
  // Degree 0 encodes to zero bytes and decodes to nothing (consuming none).
  std::vector<std::uint8_t> buf;
  st::encode_adjacency(buf, 7, std::vector<std::uint32_t>{});
  EXPECT_TRUE(buf.empty());
  const std::uint8_t sentinel = 0;
  EXPECT_EQ(st::decode_adjacency(&sentinel, &sentinel, 7, 0, 10, nullptr), &sentinel);

  // Max degree: a hub adjacent to every other vertex.
  const std::uint32_t n = 4096;
  std::vector<std::uint32_t> all;
  for (std::uint32_t u = 1; u < n; ++u) all.push_back(u);
  buf.clear();
  st::encode_adjacency(buf, 0, all);
  std::vector<std::uint32_t> decoded(all.size());
  ASSERT_NE(st::decode_adjacency(buf.data(), buf.data() + buf.size(), 0, all.size(),
                                 n, decoded.data()),
            nullptr);
  EXPECT_EQ(decoded, all);
  // Consecutive +1 gaps after the first are single bytes each.
  EXPECT_LE(buf.size(), all.size() + st::kMaxVarintBytes);
}

TEST(Varint, AdjacencyOutOfRangeRejected) {
  std::vector<std::uint8_t> buf;
  st::encode_adjacency(buf, 0, std::vector<std::uint32_t>{5});
  std::uint32_t out = 0;
  // Valid in a 6-vertex graph, out of range in a 5-vertex one.
  EXPECT_NE(st::decode_adjacency(buf.data(), buf.data() + buf.size(), 0, 1, 6, &out),
            nullptr);
  EXPECT_EQ(st::decode_adjacency(buf.data(), buf.data() + buf.size(), 0, 1, 5, &out),
            nullptr);
}

// ---------------------------------------------------------------------------
// Backings agree on structure, fingerprint, and iteration order.

TEST(StorageBackings, AllFourAgree) {
  const CSRGraph heap =
      graph::gen::erdos_renyi({.num_vertices = 300, .num_edges = 900, .seed = 5});
  const std::string raw = tmp_path("agree.hbcg");
  const std::string comp = tmp_path("agree.hbcgz");
  graph::io::save_binary_v2(heap, raw, /*compress=*/false);
  graph::io::save_binary_v2(heap, comp, /*compress=*/true);

  const CSRGraph mapped = graph::io::open_mapped(raw);
  const CSRGraph comp_mapped = graph::io::open_mapped(comp);
  const CSRGraph comp_heap(st::CompressedStorage::compress(
      heap.row_offsets(), heap.col_indices(), heap.undirected()));

  EXPECT_EQ(heap.residency(), st::Residency::kHeap);
  EXPECT_EQ(mapped.residency(), st::Residency::kMapped);
  EXPECT_EQ(comp_mapped.residency(), st::Residency::kCompressedMapped);
  EXPECT_EQ(comp_heap.residency(), st::Residency::kCompressedHeap);

  expect_same_structure(heap, mapped, "mapped");
  expect_same_structure(heap, comp_mapped, "compressed-mapped");
  expect_same_structure(heap, comp_heap, "compressed-heap");
}

TEST(StorageBackings, MappedBytesAccounting) {
  const CSRGraph heap =
      graph::gen::erdos_renyi({.num_vertices = 128, .num_edges = 400, .seed = 2});
  const std::string raw = tmp_path("bytes.hbcg");
  graph::io::save_binary_v2(heap, raw, false);
  const CSRGraph mapped = graph::io::open_mapped(raw);
  const st::Storage& s = *mapped.storage();

  EXPECT_GT(s.file_bytes(), 0u);
  EXPECT_EQ(s.mapped_bytes(), s.file_bytes());
  EXPECT_EQ(s.adjacency_bytes(),
            static_cast<std::size_t>(mapped.num_directed_edges()) * sizeof(VertexId));
  // Zero-copy: nothing on the heap until edge_sources is demanded.
  EXPECT_EQ(s.resident_bytes(), 0u);
  (void)mapped.edge_sources();
  EXPECT_EQ(s.resident_bytes(),
            static_cast<std::size_t>(mapped.num_directed_edges()) * sizeof(VertexId));
  // The decoded ledger is backing-independent.
  EXPECT_EQ(s.decoded_row_bytes(), heap.storage()->decoded_row_bytes());
  EXPECT_EQ(s.decoded_adjacency_bytes(), heap.storage()->decoded_adjacency_bytes());
}

TEST(StorageBackings, CompressedStreamMatchesMaterialized) {
  const CSRGraph heap =
      graph::gen::small_world({.num_vertices = 256, .seed = 9});
  const auto comp = st::CompressedStorage::compress(
      heap.row_offsets(), heap.col_indices(), heap.undirected());

  const std::size_t before = comp->resident_bytes();
  for (VertexId v = 0; v < heap.num_vertices(); ++v) {
    std::vector<VertexId> streamed;
    for (const VertexId u : comp->neighbors(v)) streamed.push_back(u);
    const auto expected = heap.neighbors(v);
    ASSERT_EQ(streamed.size(), expected.size()) << v;
    EXPECT_TRUE(std::equal(streamed.begin(), streamed.end(), expected.begin())) << v;
  }
  // Streaming never materializes.
  EXPECT_EQ(comp->resident_bytes(), before);
  // col_indices() does, exactly once, and the accounting shows it.
  (void)comp->col_indices();
  EXPECT_EQ(comp->resident_bytes(),
            before + static_cast<std::size_t>(heap.num_directed_edges()) *
                         sizeof(VertexId));
  EXPECT_LT(comp->adjacency_bytes(),
            static_cast<std::size_t>(heap.num_directed_edges()) * sizeof(VertexId));
}

TEST(StorageBackings, DegenerateGraphsRoundTrip) {
  // Isolated vertices and degree-0 rows survive both containers.
  CSRGraph sparse(std::vector<EdgeOffset>{0, 0, 1, 2, 2, 2},
                  std::vector<VertexId>{2, 1}, true);
  // Star: one hub adjacent to everything (max-degree row).
  const VertexId n = 64;
  std::vector<EdgeOffset> rows(n + 1);
  std::vector<VertexId> cols;
  for (VertexId u = 1; u < n; ++u) cols.push_back(u);
  rows[1] = n - 1;
  for (VertexId v = 1; v < n; ++v) {
    cols.push_back(0);
    rows[v + 1] = rows[v] + 1;
  }
  CSRGraph star(std::move(rows), std::move(cols), true);
  // Single vertex, no edges.
  CSRGraph lonely(std::vector<EdgeOffset>{0, 0}, std::vector<VertexId>{}, true);

  int i = 0;
  for (const CSRGraph* g : {&sparse, &star, &lonely}) {
    for (const bool compress : {false, true}) {
      const std::string path = tmp_path("degen" + std::to_string(i++) +
                                        (compress ? ".hbcgz" : ".hbcg"));
      graph::io::save_binary_v2(*g, path, compress);
      const CSRGraph back = graph::io::open_mapped(path);
      expect_same_structure(*g, back, path.c_str());
    }
  }
}

TEST(StorageBackings, CopySharesStorage) {
  const CSRGraph a =
      graph::gen::erdos_renyi({.num_vertices = 64, .num_edges = 128, .seed = 1});
  const CSRGraph b = a;
  EXPECT_EQ(a.storage().get(), b.storage().get());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------------------------
// io round trips and read_auto sniffing.

TEST(StorageIo, ReadAutoSniffsV2Extensions) {
  const CSRGraph g =
      graph::gen::erdos_renyi({.num_vertices = 100, .num_edges = 250, .seed = 3});
  const std::string raw = tmp_path("sniff.hbcg");
  const std::string comp = tmp_path("sniff.hbcgz");
  graph::io::save_binary_v2(g, raw, false);
  graph::io::save_binary_v2(g, comp, true);

  const CSRGraph a = graph::io::read_auto(raw);
  const CSRGraph b = graph::io::read_auto(comp);
  EXPECT_EQ(a.residency(), st::Residency::kMapped);
  EXPECT_EQ(b.residency(), st::Residency::kCompressedMapped);
  expect_same_structure(g, a, "read_auto .hbcg");
  expect_same_structure(g, b, "read_auto .hbcgz");
}

TEST(StorageIo, OpenOptionsCanSkipChecks) {
  const CSRGraph g =
      graph::gen::erdos_renyi({.num_vertices = 80, .num_edges = 200, .seed = 4});
  const std::string path = tmp_path("trusting.hbcg");
  graph::io::save_binary_v2(g, path, false);
  graph::io::OpenOptions trusting;
  trusting.validate = false;
  trusting.verify_fingerprint = false;
  const CSRGraph back = graph::io::open_mapped(path, trusting);
  expect_same_structure(g, back, "trusting open");
}

TEST(StorageIo, SaveOfAlreadyCompressedGraphReusesEncoding) {
  const CSRGraph heap =
      graph::gen::erdos_renyi({.num_vertices = 120, .num_edges = 360, .seed = 6});
  const CSRGraph comp_heap(st::CompressedStorage::compress(
      heap.row_offsets(), heap.col_indices(), heap.undirected()));
  const std::string a = tmp_path("reuse_a.hbcgz");
  const std::string b = tmp_path("reuse_b.hbcgz");
  graph::io::save_binary_v2(heap, a, true);
  graph::io::save_binary_v2(comp_heap, b, true);
  EXPECT_EQ(slurp(a), slurp(b));
}

// ---------------------------------------------------------------------------
// Corruption: every mutation either fails with FormatError or yields the
// original graph (reserved/padding bytes). Nothing else — never UB.

void expect_open_rejects_or_matches(const std::string& path, const CSRGraph& original,
                                    const std::string& what) {
  try {
    const CSRGraph g = graph::io::open_mapped(path);
    ASSERT_NO_FATAL_FAILURE(expect_same_structure(original, g, what.c_str()))
        << what << ": corrupt file opened as a different graph";
  } catch (const st::FormatError&) {
    // The expected outcome for nearly every flip.
  }
}

class StorageCorruption : public testing::TestWithParam<bool> {};

TEST_P(StorageCorruption, SingleByteFlipsNeverUB) {
  const bool compress = GetParam();
  const CSRGraph g =
      graph::gen::erdos_renyi({.num_vertices = 96, .num_edges = 300, .seed = 8});
  const std::string path = tmp_path(compress ? "flip.hbcgz" : "flip.hbcg");
  graph::io::save_binary_v2(g, path, compress);
  const std::vector<std::uint8_t> pristine = slurp(path);

  const std::string mutant = path + ".mut";
  // Every header byte, then a seeded sample of body bytes.
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < st::kHeaderBytes; ++i) positions.push_back(i);
  util::Xoshiro256 rng(13);
  for (int i = 0; i < 64; ++i) {
    positions.push_back(st::kHeaderBytes +
                        rng.next_below(pristine.size() - st::kHeaderBytes));
  }
  for (const std::size_t pos : positions) {
    std::vector<std::uint8_t> bytes = pristine;
    bytes[pos] ^= 0x40;
    spit(mutant, bytes);
    expect_open_rejects_or_matches(mutant, g,
                                   "byte " + std::to_string(pos) + " flipped");
  }
}

TEST_P(StorageCorruption, TruncationsNeverUB) {
  const bool compress = GetParam();
  const CSRGraph g =
      graph::gen::erdos_renyi({.num_vertices = 96, .num_edges = 300, .seed = 8});
  const std::string path = tmp_path(compress ? "trunc.hbcgz" : "trunc.hbcg");
  graph::io::save_binary_v2(g, path, compress);
  const std::vector<std::uint8_t> pristine = slurp(path);

  const std::string mutant = path + ".mut";
  std::vector<std::size_t> sizes = {0, 1, 7, 64, 96, 127, 128, 129,
                                    pristine.size() / 2, pristine.size() - 1};
  for (const std::size_t size : sizes) {
    std::vector<std::uint8_t> bytes(pristine.begin(), pristine.begin() + size);
    spit(mutant, bytes);
    EXPECT_THROW(graph::io::open_mapped(mutant), st::FormatError)
        << "truncated to " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(RawAndCompressed, StorageCorruption, testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "compressed" : "raw";
                         });

TEST(StorageCorruption, SpecificHeaderFields) {
  const CSRGraph g =
      graph::gen::erdos_renyi({.num_vertices = 50, .num_edges = 120, .seed = 1});
  const std::string path = tmp_path("fields.hbcg");
  graph::io::save_binary_v2(g, path, false);
  const std::vector<std::uint8_t> pristine = slurp(path);
  const std::string mutant = path + ".mut";

  auto mutate = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> bytes = pristine;
    bytes[offset] = value;
    spit(mutant, bytes);
  };

  mutate(0, 'X');  // magic
  EXPECT_THROW(graph::io::open_mapped(mutant), st::FormatError);
  mutate(8, 99);  // version
  EXPECT_THROW(graph::io::open_mapped(mutant), st::FormatError);
  mutate(12, 0x80);  // unknown flag bit
  EXPECT_THROW(graph::io::open_mapped(mutant), st::FormatError);
  mutate(32, static_cast<std::uint8_t>(pristine[32] ^ 0x01));
  // Fingerprint field (offset 32): recomputation must catch the lie.
  EXPECT_THROW(graph::io::open_mapped(mutant), st::FormatError);
  mutate(64, static_cast<std::uint8_t>(pristine[64] ^ 0x01));
  // adj_bytes no longer equals m*4 for a raw container.
  EXPECT_THROW(graph::io::open_mapped(mutant), st::FormatError);
}

TEST(StorageCorruption, ErrorsNameTheFile) {
  const std::string path = tmp_path("named.hbcg");
  spit(path, std::vector<std::uint8_t>(32, 0));
  try {
    graph::io::open_mapped(path);
    FAIL() << "expected FormatError";
  } catch (const st::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// MmapFile.

TEST(MmapFileTest, MapsBytesAndHandlesEdgeCases) {
  const std::string path = tmp_path("mmap.bin");
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  spit(path, payload);

  util::MmapFile f(path);
  ASSERT_TRUE(f.valid());
  ASSERT_EQ(f.size(), payload.size());
  EXPECT_EQ(0, std::memcmp(f.data(), payload.data(), payload.size()));
  EXPECT_EQ(f.path(), path);
  f.advise_sequential();  // best-effort, must not throw
  f.advise_random();

  // Move transfers the mapping.
  util::MmapFile moved(std::move(f));
  EXPECT_EQ(moved.size(), payload.size());

  // Empty file: valid, zero-length.
  const std::string empty = tmp_path("mmap_empty.bin");
  spit(empty, {});
  util::MmapFile e(empty);
  EXPECT_TRUE(e.valid());
  EXPECT_EQ(e.size(), 0u);

  EXPECT_THROW(util::MmapFile(tmp_path("definitely_missing.bin")),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// dyn::VersionedGraph spill + reopen.

TEST(VersionedGraphStorage, CommitToFileAndReopenKeepsEpoch) {
  CSRGraph initial =
      graph::gen::erdos_renyi({.num_vertices = 60, .num_edges = 150, .seed = 11});
  dyn::VersionedGraph vg(std::move(initial));
  dyn::UpdateBatch batch;
  batch.insert(0, 1).insert(2, 3);
  vg.apply(batch);
  const dyn::Epoch before = vg.current();

  const std::string path = tmp_path("epoch.hbcg");
  const dyn::Epoch written = vg.commit_to_file(path);
  EXPECT_EQ(written.id, before.id);
  EXPECT_EQ(written.fingerprint, before.fingerprint);

  const dyn::Epoch reopened = vg.reopen_from_file(path);
  EXPECT_EQ(reopened.id, before.id);
  EXPECT_EQ(reopened.fingerprint, before.fingerprint);
  EXPECT_EQ(reopened.graph->residency(), st::Residency::kMapped);
  expect_same_structure(*before.graph, *reopened.graph, "reopened epoch");

  // Advancing past the file makes it stale: reopen must refuse rather
  // than silently time-travel the graph.
  dyn::UpdateBatch more;
  more.insert(4, 5);
  vg.apply(more);
  EXPECT_THROW(vg.reopen_from_file(path), st::FormatError);
}

// ---------------------------------------------------------------------------
// Service integration: file-backed graphs are served zero-copy.

TEST(ServiceStorage, LoadGraphFileServesMapped) {
  const CSRGraph g =
      graph::gen::erdos_renyi({.num_vertices = 80, .num_edges = 240, .seed = 17});
  const std::string path = tmp_path("served.hbcg");
  graph::io::save_binary_v2(g, path, false);

  service::ServiceConfig config;
  config.workers = 2;
  service::BcService svc(config);
  const std::uint64_t fp = svc.load_graph_file("disk", path);
  EXPECT_EQ(fp, g.fingerprint());
  svc.load_graph("heap", g);

  const auto info = svc.graph_info("disk");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->residency, st::Residency::kMapped);
  EXPECT_EQ(info->fingerprint, g.fingerprint());
  EXPECT_GT(info->mapped_bytes, 0u);
  EXPECT_FALSE(svc.graph_info("absent").has_value());

  // Same bits from the mapped graph as from the heap one.
  service::Request req;
  req.options.strategy = core::Strategy::CpuSerial;
  req.graph_id = "disk";
  const service::Response disk = svc.wait(svc.submit(req));
  req.graph_id = "heap";
  const service::Response heap = svc.wait(svc.submit(req));
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(heap.ok());
  ASSERT_EQ(disk.result->scores.size(), heap.result->scores.size());
  EXPECT_EQ(0, std::memcmp(disk.result->scores.data(), heap.result->scores.data(),
                           heap.result->scores.size() * sizeof(double)));

  // The metrics report names the residency per graph.
  const std::string report = svc.metrics_report();
  EXPECT_NE(report.find("residency=mapped"), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// Streaming Brandes over the compressed backing equals the span path.

TEST(CompressedTraversal, BrandesMatchesHeapBitwise) {
  const CSRGraph heap =
      graph::gen::small_world({.num_vertices = 200, .seed = 21});
  const CSRGraph comp(st::CompressedStorage::compress(
      heap.row_offsets(), heap.col_indices(), heap.undirected()));

  const auto a = cpu::brandes(heap).bc;
  const auto b = cpu::brandes(comp).bc;
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
  // The streaming path must not have materialized the columns.
  EXPECT_EQ(comp.storage()->resident_bytes(),
            st::CompressedStorage::compress(heap.row_offsets(), heap.col_indices(),
                                            heap.undirected())
                ->resident_bytes());
}

}  // namespace
