file(REMOVE_RECURSE
  "CMakeFiles/hbc.dir/hbc_cli.cpp.o"
  "CMakeFiles/hbc.dir/hbc_cli.cpp.o.d"
  "hbc"
  "hbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
