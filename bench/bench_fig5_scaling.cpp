// Figure 5 reproduction: scaling with graph size for rgg (5a),
// delaunay (5b), and kron (5c) — sampling vs the edge-parallel baseline
// vs GPU-FAN, with vertex (and edge) counts doubling per scale step.
//
// Paper findings:
//   * 5a: sampling beats GPU-FAN by >12x at every rgg scale;
//   * 5b: edge-parallel and sampling both beat GPU-FAN on delaunay;
//     sampling dominates as scale grows;
//   * 5c: GPU-FAN marginally competitive at the smallest kron scale,
//     then falls behind and runs OUT OF MEMORY (O(n^2) predecessor list)
//     at scales its competitors handle easily — the dotted lines.

#include <cstdio>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "gpusim/memory.hpp"
#include "kernels/kernels.hpp"

namespace {

using namespace hbc;

// Returns simulated seconds, or -1 on device OOM.
double run_or_oom(kernels::Strategy strategy, const graph::CSRGraph& g,
                  const kernels::RunConfig& config) {
  try {
    return kernels::run_strategy(strategy, g, config).metrics.sim_seconds;
  } catch (const gpusim::DeviceOutOfMemory&) {
    return -1.0;
  }
}

void print_cell(double seconds) {
  if (seconds < 0) {
    std::printf(" %11s", "OOM");
  } else {
    std::printf(" %11.4f", seconds);
  }
}

}  // namespace

int main() {
  using namespace hbc;

  const std::uint32_t max_scale = bench::env_u32("HBC_BENCH_SCALE", 16);
  const std::uint32_t min_scale = 10;
  const std::uint32_t num_roots = bench::env_u32("HBC_BENCH_ROOTS", 8);

  bench::print_header(
      "Figure 5 — scaling by problem size (simulated seconds per " +
          std::to_string(num_roots) + " roots)",
      "GTX Titan model (6 GB); OOM marks GPU-FAN's O(n^2) predecessor list\n"
      "exceeding device memory — the paper's dotted extrapolations");

  for (const char* fam : {"rgg", "delaunay", "kron"}) {
    const auto family = graph::gen::family_by_name(fam);
    std::printf("\n(%s) %s\n", fam == std::string("rgg")   ? "5a"
                               : fam == std::string("delaunay") ? "5b"
                                                                : "5c",
                fam);
    std::printf("%7s %10s %12s %12s %12s %12s\n", "scale", "vertices", "edges",
                "sampling", "edge-par", "gpu-fan");
    double last_fan = -1.0, last_fan_ratio = 0.0;
    for (std::uint32_t scale = min_scale; scale <= max_scale; scale += 2) {
      const graph::CSRGraph g = family.make(scale, /*seed=*/1);

      kernels::RunConfig config;
      config.device = gpusim::gtx_titan();
      config.roots = bench::first_roots(g, num_roots);
      config.sampling.n_samps = std::max<std::uint32_t>(2, num_roots / 4);

      const double sa = run_or_oom(kernels::Strategy::Sampling, g, config);
      const double ep = run_or_oom(kernels::Strategy::EdgeParallel, g, config);
      const double fan = run_or_oom(kernels::Strategy::GpuFan, g, config);

      std::printf("%7u %10u %12llu", scale, g.num_vertices(),
                  static_cast<unsigned long long>(g.num_undirected_edges()));
      print_cell(sa);
      print_cell(ep);
      print_cell(fan);
      if (fan > 0 && sa > 0) {
        std::printf("   (sampling %.1fx vs gpu-fan)", fan / sa);
        if (last_fan > 0) last_fan_ratio = fan / last_fan;
        last_fan = fan;
      } else if (fan < 0 && last_fan > 0 && last_fan_ratio > 0) {
        // The paper's dotted line: extrapolate from the last two scales.
        last_fan *= last_fan_ratio;
        std::printf("   (extrapolated ~%.4f s, as the paper's dotted lines)",
                    last_fan);
      }
      std::fputc('\n', stdout);
    }
  }

  bench::print_rule();
  std::printf("note: times cover %u roots; full-BC time extrapolates linearly in n\n"
              "(the paper's uniform-root-cost observation), so ratios are scale-true.\n",
              num_roots);
  return 0;
}
