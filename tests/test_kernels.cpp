// Every GPU-model kernel must reproduce serial Brandes exactly (up to
// floating-point association) on every graph class of the paper's
// evaluation. Parameterized across (generator family, scale, strategy).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "cpu/brandes.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::VertexId;
using kernels::RunConfig;
using kernels::Strategy;

void expect_vectors_near(const std::vector<double>& a, const std::vector<double>& b,
                         double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({1.0, std::fabs(a[i]), std::fabs(b[i])});
    EXPECT_NEAR(a[i], b[i], tol * scale) << "index " << i;
  }
}

RunConfig small_device_config() {
  RunConfig config;
  config.device = gpusim::gtx_titan();
  // Shrink thresholds so the hybrid/sampling decision logic actually
  // triggers at test scale.
  config.hybrid.alpha = 24;
  config.hybrid.beta = 16;
  config.sampling.n_samps = 16;
  config.sampling.min_frontier = 16;
  return config;
}

struct Case {
  std::string family;
  std::uint32_t scale;
  Strategy strategy;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return info.param.family + "_s" + std::to_string(info.param.scale) + "_" +
         [&] {
           std::string s = kernels::to_string(info.param.strategy);
           for (char& c : s) {
             if (c == '-') c = '_';
           }
           return s;
         }();
}

class KernelMatchesOracle : public testing::TestWithParam<Case> {};

TEST_P(KernelMatchesOracle, FullBCVectorMatchesBrandes) {
  const Case& c = GetParam();
  const CSRGraph g = graph::gen::family_by_name(c.family).make(c.scale, /*seed=*/7);

  const auto oracle = cpu::brandes(g).bc;
  const kernels::RunResult r =
      kernels::run_strategy(c.strategy, g, small_device_config());

  EXPECT_EQ(r.metrics.counters.roots_processed, g.num_vertices());
  expect_vectors_near(r.bc, oracle, 1e-9);
  EXPECT_GT(r.metrics.sim_seconds, 0.0);
}

std::vector<Case> all_cases() {
  const std::vector<std::string> families{"rgg",  "delaunay",   "kron", "road",
                                          "smallworld", "scalefree", "web", "mesh2d"};
  const std::vector<Strategy> strategies{
      Strategy::VertexParallel, Strategy::EdgeParallel, Strategy::GpuFan,
      Strategy::WorkEfficient,  Strategy::Hybrid,       Strategy::Sampling,
      Strategy::DirectionOptimized,
  };
  std::vector<Case> cases;
  for (const auto& f : families) {
    for (const auto s : strategies) {
      cases.push_back({f, 8, s});
    }
  }
  // A deeper scale for the strategies whose control flow depends on size.
  for (const auto s : {Strategy::WorkEfficient, Strategy::Hybrid, Strategy::Sampling}) {
    cases.push_back({"kron", 10, s});
    cases.push_back({"road", 10, s});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, KernelMatchesOracle, testing::ValuesIn(all_cases()),
                         case_name);

TEST(Kernels, RootSubsetMatchesOracleSubset) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 256, .k = 4, .seed = 1});
  const std::vector<VertexId> roots{0, 17, 101, 255};
  const auto oracle = cpu::brandes(g, {.sources = roots}).bc;

  for (const auto strategy :
       {Strategy::VertexParallel, Strategy::EdgeParallel, Strategy::GpuFan,
        Strategy::WorkEfficient, Strategy::Hybrid, Strategy::Sampling,
        Strategy::DirectionOptimized}) {
    RunConfig config = small_device_config();
    config.roots = roots;
    const auto r = kernels::run_strategy(strategy, g, config);
    EXPECT_EQ(r.metrics.counters.roots_processed, roots.size())
        << kernels::to_string(strategy);
    expect_vectors_near(r.bc, oracle, 1e-9);
  }
}

TEST(Kernels, IsolatedRootContributesNothing) {
  // A graph with isolated vertices (the case the Jia et al. reference
  // implementation cannot even load).
  const CSRGraph g = graph::build_csr(
      6, std::vector<graph::Edge>{{0, 1}, {1, 2}, {2, 3}});
  RunConfig config = small_device_config();
  config.roots = {4, 5};
  for (const auto strategy :
       {Strategy::EdgeParallel, Strategy::WorkEfficient, Strategy::Hybrid}) {
    const auto r = kernels::run_strategy(strategy, g, config);
    for (double s : r.bc) EXPECT_EQ(s, 0.0);
  }
}

TEST(Kernels, StrategyNamesRoundTrip) {
  EXPECT_STREQ(kernels::to_string(Strategy::WorkEfficient), "work-efficient");
  EXPECT_STREQ(kernels::to_string(Strategy::EdgeParallel), "edge-parallel");
  EXPECT_STREQ(kernels::to_string(Strategy::GpuFan), "gpu-fan");
  EXPECT_STREQ(kernels::to_string(Strategy::Sampling), "sampling");
}

TEST(Kernels, DeterministicAcrossRuns) {
  const CSRGraph g = graph::gen::kronecker({.scale = 8, .edge_factor = 8, .seed = 3});
  const RunConfig config = small_device_config();
  const auto a = kernels::run_hybrid(g, config);
  const auto b = kernels::run_hybrid(g, config);
  ASSERT_EQ(a.bc.size(), b.bc.size());
  for (std::size_t i = 0; i < a.bc.size(); ++i) EXPECT_EQ(a.bc[i], b.bc[i]);
  EXPECT_EQ(a.metrics.elapsed_cycles, b.metrics.elapsed_cycles);
  EXPECT_EQ(a.metrics.counters.edges_traversed, b.metrics.counters.edges_traversed);
}

}  // namespace
