# Empty compiler generated dependencies file for hbc_util.
# This may be replaced when dependencies are built.
