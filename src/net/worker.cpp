#include "net/worker.hpp"

#include <exception>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "net/shard.hpp"
#include "util/backoff.hpp"

namespace hbc::net {

using Clock = std::chrono::steady_clock;

namespace {

// "gen:family:scale[:seed]" → generated graph; anything else is a path.
// Paths ending in .hbcg/.hbcgz open mmap'd (graph::io::read_auto), so a
// whole worker fleet pointed at one file shares a single page-cache copy
// of the adjacency — and the coordinator's fingerprint check below
// compares against a value recomputed from the mapped bytes, never the
// file header's own claim.
graph::CSRGraph default_loader(const std::string& spec) {
  if (spec.rfind("gen:", 0) != 0) return graph::io::read_auto(spec);
  const std::string rest = spec.substr(4);
  const std::size_t c1 = rest.find(':');
  if (c1 == std::string::npos) {
    throw std::invalid_argument("graph spec '" + spec +
                                "': expected gen:family:scale[:seed]");
  }
  const std::string family = rest.substr(0, c1);
  const std::size_t c2 = rest.find(':', c1 + 1);
  const std::string scale_s =
      c2 == std::string::npos ? rest.substr(c1 + 1) : rest.substr(c1 + 1, c2 - c1 - 1);
  const std::uint32_t scale = static_cast<std::uint32_t>(std::stoul(scale_s));
  const std::uint64_t seed =
      c2 == std::string::npos ? 1 : std::stoull(rest.substr(c2 + 1));
  return graph::gen::family_by_name(family).make(scale, seed);
}

}  // namespace

Worker::Worker(WorkerConfig config) : cfg_(std::move(config)), svc_(cfg_.service) {
  if (!cfg_.graph_loader) cfg_.graph_loader = default_loader;
}

Worker::~Worker() = default;

void Worker::trace_instant(const char* name, std::uint64_t req,
                           std::uint64_t shard) const {
  if (!cfg_.tracer) return;
  trace::Sink* s = cfg_.tracer->thread_sink("worker");
  if (!s || !s->wants(trace::kService)) return;
  s->instant(name, trace::kService, cfg_.tracer->now_ns(),
             {{"req", req}, {"shard", shard}});
}

Socket Worker::connect_with_backoff() {
  util::BackoffConfig bc;
  bc.initial = cfg_.connect_backoff;
  bc.max = cfg_.max_backoff;
  bc.seed = std::hash<std::string>{}(cfg_.name);
  util::Backoff backoff(bc);
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      return connect_to(cfg_.connect);
    } catch (const NetError&) {
      if (attempt >= std::max<std::uint32_t>(cfg_.max_connect_attempts, 1) ||
          stop_.load(std::memory_order_relaxed)) {
        throw;
      }
    }
    std::this_thread::sleep_for(backoff.next());
  }
}

void Worker::run() {
  // Rejoin pacing shares the reconnect policy but keeps its own attempt
  // counter — a long-lived worker that loses the coordinator twice an
  // hour should not escalate to max_backoff forever.
  util::BackoffConfig bc;
  bc.initial = cfg_.connect_backoff;
  bc.max = cfg_.max_backoff;
  bc.seed = std::hash<std::string>{}(cfg_.name) ^ 0x5265'6A6F'696Eull;  // "Rejoin"
  util::Backoff rejoin(bc);
  for (std::uint32_t session = 0;; ++session) {
    const SessionEnd end = run_session();
    if (end == SessionEnd::Clean) return;
    if (stop_.load(std::memory_order_relaxed)) return;
    if (session >= cfg_.rejoin_attempts) return;
    ++stats_.reconnects;
    svc_.note_reconnect();
    std::this_thread::sleep_for(rejoin.next());
  }
}

Worker::SessionEnd Worker::run_session() {
  Conn conn(connect_with_backoff(), cfg_.connect.str());
  if (cfg_.chaos) {
    // High bit keeps worker streams disjoint from coordinator slot ids.
    conn.arm_chaos(cfg_.chaos,
                   std::hash<std::string>{}(cfg_.name) | 0x8000'0000'0000'0000ull);
  }
  conn.set_frame_deadline(cfg_.frame_deadline);
  {
    wire::HelloMsg hello;
    hello.protocol = wire::kProtocolVersion;
    hello.worker_name = cfg_.name;
    const std::size_t slots = cfg_.service.workers != 0
                                  ? cfg_.service.workers
                                  : std::thread::hardware_concurrency();
    hello.shard_slots = static_cast<std::uint32_t>(std::max<std::size_t>(slots, 1));
    conn.send(wire::encode(hello, 0));
  }

  bool draining = false;
  bool done = false;
  auto last_heartbeat = Clock::now();
  misses_in_row_ = 0;
  // Heartbeats from a previous session are moot on a fresh link.
  last_acked_seq_ = heartbeat_seq_;

  while (!done && !stop_.load(std::memory_order_relaxed)) {
    conn.pump_chaos();
    std::vector<pollfd> fds;
    short events = POLLIN;
    if (conn.wants_write()) events |= POLLOUT;
    fds.push_back(pollfd{conn.fd(), events, 0});
    // Short timeout either way: pending tickets complete on service
    // threads, not on this socket, so the loop must come back to look.
    int wait_ms = pending_.empty() ? 50 : 10;
    if (conn.chaos_pending()) wait_ms = std::min(wait_ms, 5);
    poll_wait(fds, wait_ms);

    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      const Conn::Io io = conn.pump_read();
      wire::Frame frame;
      for (;;) {
        const wire::DecodeStatus s = conn.next_frame(frame);
        if (s == wire::DecodeStatus::Ok) {
          handle_frame(conn, frame, draining, done);
          if (done) break;
          continue;
        }
        if (s != wire::DecodeStatus::NeedMore) {
          // Poisoned stream (e.g. a chaos-flipped header): the link is
          // unusable, but the worker itself is fine — rejoin-eligible.
          return SessionEnd::ConnLost;
        }
        break;
      }
      if (io != Conn::Io::Ok) {
        // Coordinator is gone. Finish nothing — results have nowhere to
        // go on THIS connection; pending tickets survive for the next.
        return SessionEnd::ConnLost;
      }
    }
    if (done) break;

    if (conn.frame_overdue()) {
      // The coordinator is dribbling a frame — treat it as gone.
      return SessionEnd::ConnLost;
    }

    poll_tickets(conn);

    if (draining && pending_.empty()) {
      wire::GoodbyeMsg bye;
      bye.reason = "drained";
      conn.send(wire::encode(bye, 0));
      // Best-effort flush of everything still queued, then leave.
      while (conn.wants_write() && conn.pump_write() == Conn::Io::Ok) {
        if (!conn.wants_write()) break;
        std::vector<pollfd> w{pollfd{conn.fd(), POLLOUT, 0}};
        poll_wait(w, 100);
      }
      break;
    }

    if (cfg_.heartbeat_interval.count() > 0 &&
        Clock::now() - last_heartbeat >= cfg_.heartbeat_interval) {
      // The worker's half of the failure detector: emitting while the
      // previous heartbeat is still unacked is a miss; enough in a row
      // and the link is declared dead without waiting for a socket error.
      if (heartbeat_seq_ > last_acked_seq_) {
        ++misses_in_row_;
        ++stats_.heartbeat_misses;
        svc_.note_heartbeat_miss();
        if (misses_in_row_ >=
            std::max<std::uint32_t>(cfg_.max_heartbeat_misses, 1)) {
          return SessionEnd::ConnLost;
        }
      }
      wire::HeartbeatMsg hb;
      hb.seq = ++heartbeat_seq_;
      hb.inflight = static_cast<std::uint32_t>(pending_.size());
      conn.send(wire::encode(hb, 0));
      last_heartbeat = Clock::now();
      ++stats_.heartbeats;
    }

    if (conn.wants_write() && conn.pump_write() != Conn::Io::Ok) {
      return SessionEnd::ConnLost;
    }
  }
  return SessionEnd::Clean;
}

void Worker::handle_frame(Conn& conn, const wire::Frame& frame, bool& draining,
                          bool& done) {
  switch (frame.type) {
    case wire::MsgType::HelloAck:
      return;  // nothing to record — the coordinator addresses us by slot
    case wire::MsgType::LoadGraph: {
      wire::LoadGraphMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      wire::GraphLoadedMsg reply;
      reply.graph_id = m.graph_id;
      try {
        graph::CSRGraph g = cfg_.graph_loader(m.spec);
        const std::uint64_t fp = service::graph_fingerprint(g);
        if (fp != m.fingerprint) {
          reply.ok = 0;
          reply.fingerprint = fp;
          reply.error = "fingerprint mismatch: spec '" + m.spec + "' loads a "
                        "different graph than the coordinator registered";
        } else {
          svc_.load_graph(m.graph_id, std::move(g));
          std::uint64_t final_fp = fp;
          if (!m.updates.empty()) {
            // Replay the coordinator's applied-update history so a late
            // joiner catches up to the current epoch in one round trip.
            dyn::UpdateBatch batch;
            for (const wire::WireUpdate& u : m.updates) {
              batch.edges.push_back({u.u, u.v, u.insert != 0});
            }
            final_fp = svc_.mutate_graph(m.graph_id, batch).fingerprint_after;
          }
          if (final_fp != m.fingerprint_after) {
            reply.ok = 0;
            reply.fingerprint = final_fp;
            reply.error = "fingerprint mismatch after update replay";
          } else {
            reply.ok = 1;
            reply.fingerprint = final_fp;
            ++stats_.graphs_loaded;
          }
        }
      } catch (const std::exception& ex) {
        reply.ok = 0;
        reply.error = ex.what();
      }
      conn.send(wire::encode(reply, frame.request_id));
      return;
    }
    case wire::MsgType::SubmitShard: {
      wire::SubmitShardMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      ++shards_seen_;
      ++stats_.shards_received;
      if (cfg_.die_after_shards != 0 && shards_seen_ >= cfg_.die_after_shards) {
        // Chaos: vanish with this shard unanswered. The coordinator's
        // death path must reassign it.
        conn.close();
        done = true;
        return;
      }
      trace_instant("shard-recv", frame.request_id, m.shard_index);
      service::Request req;
      req.graph_id = m.graph_id;
      req.options = options_from_shard(m);
      req.timeout = std::chrono::milliseconds(m.deadline_ms);
      if (m.has_budget != 0) {
        // v2 budgeted query (Whole mode): the local service runs its own
        // progressive controller and reports what it delivered.
        req.budget.accuracy_target = m.accuracy_target;
        req.budget.max_roots = m.budget_max_roots;
        req.budget.allow_refinement = m.allow_refinement != 0;
      }
      PendingShard p;
      p.request_id = frame.request_id;
      p.shard_index = m.shard_index;
      p.mode = static_cast<std::uint8_t>(m.mode);
      p.proto = frame.version;
      p.ticket = svc_.submit(std::move(req));
      pending_.push_back(std::move(p));
      return;
    }
    case wire::MsgType::Mutate: {
      wire::MutateMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      wire::MutateDoneMsg reply;
      reply.graph_id = m.graph_id;
      try {
        dyn::UpdateBatch batch;
        for (const wire::WireUpdate& u : m.updates) {
          batch.edges.push_back({u.u, u.v, u.insert != 0});
        }
        const service::MutationResult mr = svc_.mutate_graph(m.graph_id, batch);
        reply.fingerprint = mr.fingerprint_after;
        reply.ok = mr.fingerprint_after == m.fingerprint_after ? 1 : 0;
        if (reply.ok == 0) reply.error = "fingerprint mismatch after mutation";
        ++stats_.mutations;
      } catch (const std::exception& ex) {
        reply.ok = 0;
        reply.error = ex.what();
      }
      conn.send(wire::encode(reply, frame.request_id));
      return;
    }
    case wire::MsgType::Heartbeat: {
      wire::HeartbeatMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      wire::HeartbeatAckMsg ack;
      ack.seq = m.seq;
      conn.send(wire::encode(ack, frame.request_id));
      return;
    }
    case wire::MsgType::HeartbeatAck: {
      wire::HeartbeatAckMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      if (m.seq > last_acked_seq_) last_acked_seq_ = m.seq;
      misses_in_row_ = 0;  // the link round-trips again
      return;
    }
    case wire::MsgType::Quarantine: {
      wire::QuarantineMsg m;
      if (wire::decode(frame, m) != wire::DecodeStatus::Ok) return;
      // Informational: the coordinator's dispatch gate is authoritative.
      // The worker records the notice (and keeps heartbeating — that IS
      // the readmission path).
      ++stats_.quarantine_notices;
      trace_instant("quarantine-notice", frame.request_id,
                    static_cast<std::uint64_t>(m.state));
      return;
    }
    case wire::MsgType::Drain:
      draining = true;
      return;
    case wire::MsgType::Goodbye:
      done = true;
      return;
    default:
      return;  // unknown-but-valid type: ignore for forward compatibility
  }
}

void Worker::poll_tickets(Conn& conn) {
  for (std::size_t i = 0; i < pending_.size();) {
    PendingShard& p = pending_[i];
    if (p.ticket.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++i;
      continue;
    }
    const service::Response r = svc_.wait(p.ticket);
    wire::ShardResultMsg out;
    out.shard_index = p.shard_index;
    const bool partial = p.mode == static_cast<std::uint8_t>(wire::ShardMode::Partial);
    if (r.ok() && !(partial && r.degraded)) {
      out.ok = 1;
      out.degraded = r.degraded ? 1 : 0;
      out.roots_processed = r.result->roots_processed;
      out.compute_ms = r.compute_ms;
      out.scores = r.result->scores;
      if (r.estimate) {
        out.has_estimate = 1;
        out.est_roots_used = r.estimate->roots_used;
        out.est_stderr = r.estimate->stderr_est;
        out.est_rung = r.estimate->rung;
        out.est_refining = r.estimate->refining ? 1 : 0;
      }
      ++stats_.shards_served;
    } else {
      out.ok = 0;
      // A degraded partial is refused: the service substituted a strategy,
      // and substituted bits would corrupt the coordinator's exact fold.
      out.error = r.ok() ? "degraded: strategy substituted, bits not exact"
                         : (r.error.empty() ? "compute failed" : r.error);
      if (r.ok()) ++stats_.shards_refused;
    }
    trace_instant("shard-sent", p.request_id, p.shard_index);
    conn.send(wire::encode(out, p.request_id, p.proto));
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

}  // namespace hbc::net
