file(REMOVE_RECURSE
  "libhbc_core.a"
)
