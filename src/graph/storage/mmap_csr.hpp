#pragma once

// Mapped storage backing: a raw-CSR .hbcg file mmap'd read-only and
// used in place. Row offsets and column indices are spans straight into
// the page cache — no heap copy of the graph is ever made, so N worker
// processes mapping the same file share one physical copy (the
// out-of-core serving mode; see docs/storage.md).

#include <memory>
#include <span>

#include "graph/storage/storage.hpp"
#include "util/mmap_file.hpp"

namespace hbc::graph::storage {

class MappedStorage final : public Storage {
 public:
  /// Wrap an already-parsed uncompressed header over `file`. With
  /// `validate` the CSR structure (monotone rows, in-range columns) is
  /// checked up front and violations throw FormatError; skipping it
  /// trusts the file and is only for reopening files this process just
  /// wrote. Alignment guarantees of the format make the reinterpreted
  /// spans well-defined.
  MappedStorage(std::shared_ptr<const util::MmapFile> file, const FileHeader& header,
                bool validate);

  std::span<const VertexId> col_indices() const override { return cols_; }

  std::size_t resident_bytes() const noexcept override {
    return edge_sources_resident_bytes();
  }
  std::size_t mapped_bytes() const noexcept override { return file_->size(); }
  std::size_t adjacency_bytes() const noexcept override {
    return cols_.size() * sizeof(VertexId);
  }
  std::size_t file_bytes() const noexcept override { return file_->size(); }

  const util::MmapFile& file() const noexcept { return *file_; }

 private:
  std::uint64_t compute_fingerprint() const override;

  std::shared_ptr<const util::MmapFile> file_;
  std::span<const VertexId> cols_;
};

}  // namespace hbc::graph::storage
