
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bc_state.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/bc_state.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/bc_state.cpp.o.d"
  "/root/repo/src/kernels/direction_optimized.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/direction_optimized.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/direction_optimized.cpp.o.d"
  "/root/repo/src/kernels/driver.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/driver.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/driver.cpp.o.d"
  "/root/repo/src/kernels/edge_parallel.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/edge_parallel.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/edge_parallel.cpp.o.d"
  "/root/repo/src/kernels/gpufan.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/gpufan.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/gpufan.cpp.o.d"
  "/root/repo/src/kernels/hybrid.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/hybrid.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/hybrid.cpp.o.d"
  "/root/repo/src/kernels/sampling.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/sampling.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/sampling.cpp.o.d"
  "/root/repo/src/kernels/vertex_parallel.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/vertex_parallel.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/vertex_parallel.cpp.o.d"
  "/root/repo/src/kernels/weighted.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/weighted.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/weighted.cpp.o.d"
  "/root/repo/src/kernels/work_efficient.cpp" "src/CMakeFiles/hbc_kernels.dir/kernels/work_efficient.cpp.o" "gcc" "src/CMakeFiles/hbc_kernels.dir/kernels/work_efficient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hbc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbc_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hbc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
