#include "graph/algorithms.hpp"

#include <algorithm>
#include <cmath>

namespace hbc::graph {

BFSResult bfs(const CSRGraph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  BFSResult r;
  r.distance.assign(n, kInfDistance);
  r.parent.assign(n, kInvalidVertex);
  if (source >= n) return r;

  std::vector<VertexId> current{source};
  std::vector<VertexId> next;
  r.distance[source] = 0;
  r.reached = 1;
  std::uint32_t depth = 0;

  while (!current.empty()) {
    r.frontiers.push_back(current.size());
    std::uint64_t edge_frontier = 0;
    for (VertexId v : current) edge_frontier += g.degree(v);
    r.edge_frontiers.push_back(edge_frontier);

    next.clear();
    for (VertexId v : current) {
      for (VertexId w : g.neighbors(v)) {
        if (r.distance[w] == kInfDistance) {
          r.distance[w] = depth + 1;
          r.parent[w] = v;
          next.push_back(w);
        }
      }
    }
    if (next.empty()) break;
    ++depth;
    r.reached += next.size();
    std::swap(current, next);
  }
  r.max_depth = depth;
  return r;
}

ComponentsResult connected_components(const CSRGraph& g) {
  const VertexId n = g.num_vertices();
  ComponentsResult r;
  r.component.assign(n, kInvalidVertex);

  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (r.component[s] != kInvalidVertex) continue;
    const VertexId id = r.num_components++;
    std::uint64_t size = 0;
    stack.push_back(s);
    r.component[s] = id;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      ++size;
      for (VertexId w : g.neighbors(v)) {
        if (r.component[w] == kInvalidVertex) {
          r.component[w] = id;
          stack.push_back(w);
        }
      }
    }
    r.sizes.push_back(size);
    r.largest_size = std::max(r.largest_size, size);
    if (g.degree(s) == 0) ++r.isolated_vertices;
  }
  return r;
}

std::uint32_t pseudo_diameter(const CSRGraph& g, VertexId seed, int sweeps) {
  if (g.num_vertices() == 0) return 0;
  VertexId start = std::min<VertexId>(seed, g.num_vertices() - 1);
  // If the seed is isolated, find any vertex with degree > 0.
  if (g.degree(start) == 0) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.degree(v) > 0) {
        start = v;
        break;
      }
    }
  }

  std::uint32_t best = 0;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    BFSResult r = bfs(g, start);
    if (r.max_depth <= best && sweep > 0) break;
    best = std::max(best, r.max_depth);
    // Jump to a farthest vertex for the next sweep.
    VertexId farthest = start;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (r.distance[v] != kInfDistance && r.distance[v] == r.max_depth) {
        farthest = v;
        break;
      }
    }
    if (farthest == start) break;
    start = farthest;
  }
  return best;
}

DegreeStats degree_stats(const CSRGraph& g) {
  DegreeStats s;
  const VertexId n = g.num_vertices();
  if (n == 0) return s;
  double sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const auto d = g.degree(v);
    s.max_degree = std::max<VertexId>(s.max_degree, static_cast<VertexId>(d));
    sum += static_cast<double>(d);
  }
  s.mean_degree = sum / n;
  double acc = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const double d = static_cast<double>(g.degree(v)) - s.mean_degree;
    acc += d * d;
  }
  s.degree_stddev = std::sqrt(acc / n);
  s.skew = s.mean_degree > 0.0 ? s.degree_stddev / s.mean_degree : 0.0;
  return s;
}

bool is_connected(const CSRGraph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).num_components == 1;
}

double clustering_coefficient(const CSRGraph& g, VertexId sample_vertices) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0.0;

  auto has_edge = [&](VertexId u, VertexId w) {
    const auto nbrs = g.neighbors(u);
    return std::binary_search(nbrs.begin(), nbrs.end(), w);
  };

  const VertexId samples =
      sample_vertices == 0 ? n : std::min<VertexId>(sample_vertices, n);
  double sum = 0.0;
  std::uint64_t counted = 0;
  for (VertexId i = 0; i < samples; ++i) {
    const VertexId v = sample_vertices == 0
                           ? i
                           : static_cast<VertexId>(
                                 (static_cast<std::uint64_t>(i) * n) / samples);
    const auto nbrs = g.neighbors(v);
    if (nbrs.size() < 2) continue;
    std::uint64_t closed = 0;
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        if (has_edge(nbrs[a], nbrs[b])) ++closed;
      }
    }
    const double possible =
        0.5 * static_cast<double>(nbrs.size()) * static_cast<double>(nbrs.size() - 1);
    sum += static_cast<double>(closed) / possible;
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 0.0;
}

}  // namespace hbc::graph
