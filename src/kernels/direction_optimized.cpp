#include <memory>

#include "kernels/detail.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::EdgeOffset;
using graph::VertexId;

// Direction-optimizing BC (extension; Beamer et al. appear in the paper's
// related work, §VI). Levels run top-down (the work-efficient queue
// expansion) until the classic Beamer heuristic fires:
//
//   switch to bottom-up when   edge_frontier > unexplored_edges / alpha
//   switch back to top-down when vertex_frontier < n / beta
//
// with the standard alpha = 14, beta = 24. Bottom-up levels scan every
// unvisited vertex's full adjacency (path counting forbids the early-exit
// that plain BFS bottom-up enjoys) but eliminate atomics and frontier
// queue pressure — a win exactly on the huge middle levels of small-world
// and kron graphs. The dependency stage is unchanged (Algorithm 3).
RunResult run_direction_optimized(const CSRGraph& g, const RunConfig& config) {
  util::Timer wall;
  gpusim::Device device(config.device);
  const std::uint32_t num_blocks = config.device.num_sms;

  detail::allocate_graph(device, g, /*needs_edge_sources=*/false);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    device.memory().allocate(BCWorkspace::work_efficient_bytes(g.num_vertices()),
                             "diropt.block_locals");
  }
  device.begin_run(num_blocks);

  const std::vector<VertexId> roots = detail::resolve_roots(g, config);
  RunResult result;
  result.bc.assign(g.num_vertices(), 0.0);

  std::vector<std::unique_ptr<BCWorkspace>> workspaces;
  workspaces.reserve(num_blocks);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    workspaces.push_back(std::make_unique<BCWorkspace>(g));
  }

  const EdgeOffset m = g.num_directed_edges();
  const std::uint64_t n = g.num_vertices();
  constexpr std::uint64_t kAlpha = 14;  // Beamer's tuned constants
  constexpr std::uint64_t kBeta = 24;

  for (std::size_t i = 0; i < roots.size(); ++i) {
    const VertexId root = roots[i];
    const std::uint32_t block_id = static_cast<std::uint32_t>(i % num_blocks);
    auto ctx = device.block(block_id);
    BCWorkspace& ws = *workspaces[block_id];
    const std::uint64_t root_start_cycles = ctx.cycles();

    PerRootStats stats;
    stats.root = root;

    ws.init_root(root, ctx);

    Mode mode = Mode::WorkEfficient;  // top-down
    std::uint64_t explored_edges = 0;
    for (;;) {
      const std::uint64_t before = ctx.cycles();
      const BCWorkspace::LevelStats level =
          mode == Mode::BottomUp ? ws.bu_forward_level(ctx, ws.current_depth())
                                 : ws.we_forward_level(ctx);
      if (mode == Mode::BottomUp) {
        ++result.metrics.ep_levels;  // reported as "non-queue" levels
      } else {
        ++result.metrics.we_levels;
      }
      if (config.collect_per_root_stats) {
        stats.iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                    level.edge_frontier, ctx.cycles() - before, mode});
      }
      explored_edges += level.edge_frontier;

      // Beamer switch for the NEXT level. The heuristic needs the next
      // level's edge count; a real kernel folds this degree sum into
      // queue generation — charge one streaming op per element.
      const std::uint64_t next_frontier = ws.q_next_len();
      std::uint64_t next_edges = 0;
      for (const VertexId w : ws.next_queue()) next_edges += g.degree(w);
      ctx.charge_uniform_round(next_frontier, ctx.cost().scan_seq);
      const std::uint64_t unexplored = m > explored_edges ? m - explored_edges : 0;
      // Bottom-up requires BOTH a heavy edge frontier relative to the
      // unexplored edges AND a large vertex frontier; otherwise the tail
      // of a high-diameter search (tiny frontier, little left unexplored)
      // would flap between directions every level.
      if (mode == Mode::WorkEfficient && next_edges > unexplored / kAlpha &&
          next_frontier >= n / kBeta) {
        mode = Mode::BottomUp;
      } else if (mode == Mode::BottomUp && next_frontier < n / kBeta) {
        mode = Mode::WorkEfficient;
      }

      if (ws.q_next_len() == 0) break;
      ws.finish_level(ctx);
    }
    const std::uint32_t max_depth = ws.max_depth();
    stats.max_depth = max_depth;

    for (std::uint32_t dep = max_depth; dep-- > 1;) {
      ws.we_backward_level(ctx, dep);
    }

    ws.accumulate_bc(result.bc, root, /*use_queue=*/true, ctx);
    ++device.counters().roots_processed;
    if (config.collect_root_cycles) {
      result.metrics.per_root_cycles.push_back(ctx.cycles() - root_start_cycles);
    }
    if (config.collect_per_root_stats) result.per_root.push_back(std::move(stats));
  }

  detail::finalize_metrics(result, device, wall);
  return result;
}

}  // namespace hbc::kernels
