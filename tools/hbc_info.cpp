// hbc-info — print the Table II row for a graph: vertex/edge counts,
// max degree, pseudo-diameter, component structure, degree skew, and the
// parallelization strategy Algorithm 5's heuristic would choose for it.
//
// With --fingerprint, print only the structural fingerprint (the 64-bit
// hex value hbc::net uses to verify that every worker in a fleet
// materialized the same graph from a spec) and exit. Useful for checking
// whether two files or specs will be accepted as the same graph.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace hbc;

  bool fingerprint_only = false;
  const char* spec = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fingerprint") == 0) {
      fingerprint_only = true;
    } else if (spec == nullptr) {
      spec = argv[i];
    } else {
      spec = nullptr;  // too many positionals -> usage
      break;
    }
  }
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--fingerprint] <graph-file | gen:<family>:<scale>[:<seed>]>\n",
                 argv[0]);
    return 2;
  }

  try {
    const graph::CSRGraph g = cli::load_graph_spec(spec);

    if (fingerprint_only) {
      std::printf("%016llx\n",
                  static_cast<unsigned long long>(service::graph_fingerprint(g)));
      return 0;
    }

    const auto stats = graph::degree_stats(g);
    const auto cc = graph::connected_components(g);
    const auto diameter = graph::pseudo_diameter(g);

    std::printf("vertices          %u\n", g.num_vertices());
    std::printf("edges             %llu undirected (%llu directed slots)\n",
                static_cast<unsigned long long>(g.num_undirected_edges()),
                static_cast<unsigned long long>(g.num_directed_edges()));
    std::printf("max degree        %u\n", stats.max_degree);
    std::printf("mean degree       %.2f (skew %.2f)\n", stats.mean_degree, stats.skew);
    std::printf("pseudo-diameter   %u\n", diameter);
    std::printf("clustering coeff  %.3f (sampled)\n",
                graph::clustering_coefficient(g, std::min<graph::VertexId>(
                                                     2048, g.num_vertices())));
    std::printf("components        %u (largest %llu, %llu isolated vertices)\n",
                cc.num_components, static_cast<unsigned long long>(cc.largest_size),
                static_cast<unsigned long long>(cc.isolated_vertices));
    std::printf("CSR storage       %.1f MiB host\n",
                static_cast<double>(g.storage_bytes()) / (1024.0 * 1024.0));
    std::printf("fingerprint       %016llx\n",
                static_cast<unsigned long long>(service::graph_fingerprint(g)));

    // Algorithm 5's decision on a quick probe.
    if (g.num_vertices() > 1 && g.num_directed_edges() > 0) {
      kernels::RunConfig config;
      config.device = gpusim::gtx_titan();
      const std::uint32_t probes = std::min<std::uint32_t>(64, g.num_vertices());
      config.roots.resize(probes);
      for (std::uint32_t i = 0; i < probes; ++i) {
        config.roots[i] = static_cast<graph::VertexId>(
            (static_cast<std::uint64_t>(i) * g.num_vertices()) / probes);
      }
      config.sampling.n_samps = probes;
      const auto r = kernels::run_sampling(g, config);
      std::printf("Algorithm 5       median BFS depth %.0f vs threshold %.1f -> %s\n",
                  r.metrics.sampling_median_depth,
                  4.0 * std::log2(static_cast<double>(g.num_vertices())),
                  r.metrics.sampling_chose_edge_parallel
                      ? "edge-parallel (small-world/scale-free)"
                      : "work-efficient (high diameter)");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
