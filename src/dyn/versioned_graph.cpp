#include "dyn/versioned_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/storage/storage.hpp"

namespace hbc::dyn {

using graph::CSRGraph;
using graph::VertexId;

namespace {

std::uint64_t edge_key(VertexId u, VertexId v) noexcept {
  const VertexId lo = std::min(u, v);
  const VertexId hi = std::max(u, v);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

Epoch make_epoch(std::uint64_t id, std::shared_ptr<const CSRGraph> g) {
  Epoch e;
  e.id = id;
  e.fingerprint = g->fingerprint();
  e.graph = std::move(g);
  return e;
}

std::shared_ptr<const CSRGraph> require_mutable(std::shared_ptr<const CSRGraph> g) {
  if (!g) throw std::invalid_argument("VersionedGraph: null graph");
  if (!g->undirected()) {
    throw std::invalid_argument(
        "VersionedGraph: only undirected graphs are mutable (the incremental "
        "BC level test relies on d(s,u) == d(u,s) symmetry)");
  }
  return g;
}

}  // namespace

VersionedGraph::VersionedGraph(CSRGraph initial, trace::Tracer* tracer)
    : VersionedGraph(std::make_shared<const CSRGraph>(std::move(initial)), tracer) {}

VersionedGraph::VersionedGraph(std::shared_ptr<const CSRGraph> initial,
                               trace::Tracer* tracer)
    : tracer_(tracer), current_(make_epoch(0, require_mutable(std::move(initial)))) {}

Epoch VersionedGraph::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::uint64_t VersionedGraph::epoch_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_.id;
}

CommitResult VersionedGraph::apply(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  CommitResult staged = stage_locked(batch);
  commit_locked(staged);
  return staged;
}

CommitResult VersionedGraph::stage(const UpdateBatch& batch) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stage_locked(batch);
}

void VersionedGraph::commit(const CommitResult& staged) {
  std::lock_guard<std::mutex> lock(mu_);
  commit_locked(staged);
}

CommitResult VersionedGraph::stage_locked(const UpdateBatch& batch) const {
  const CSRGraph& g = *current_.graph;
  const VertexId n = g.num_vertices();

  CommitResult result;
  result.before = current_;

  for (const EdgeUpdate& e : batch.edges) {
    if (e.u >= n || e.v >= n) {
      throw std::out_of_range("VersionedGraph::apply: vertex out of range");
    }
  }

  // Last operation on each edge wins; then updates whose target state
  // matches the current graph are no-ops. Self loops are always no-ops.
  std::unordered_map<std::uint64_t, bool> last_op;  // edge -> present after?
  std::size_t self_loops = 0;
  for (const EdgeUpdate& e : batch.edges) {
    if (e.u == e.v) {
      ++self_loops;
      continue;
    }
    last_op[edge_key(e.u, e.v)] = e.insert;
  }

  for (const auto& [key, present_after] : last_op) {
    const auto u = static_cast<VertexId>(key >> 32);
    const auto v = static_cast<VertexId>(key & 0xffffffffu);
    const auto nbrs = g.neighbors(u);
    const bool present_before = std::binary_search(nbrs.begin(), nbrs.end(), v);
    if (present_before != present_after) {
      result.applied.push_back({u, v, present_after});
    }
  }
  result.noops = batch.edges.size() - result.applied.size();

  if (result.applied.empty()) {
    result.after = current_;
    return result;
  }
  // Deterministic applied order (the hash map scrambled it).
  std::sort(result.applied.begin(), result.applied.end(),
            [](const EdgeUpdate& a, const EdgeUpdate& b) {
              return std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });

  // Copy-on-write rebuild: surviving before-edges + inserted edges. The
  // removal set is consulted via last_op (removals are exactly the
  // applied non-inserts, but last_op already has them keyed).
  graph::EdgeList edges;
  edges.reserve(g.num_undirected_edges() + result.applied.size());
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) {
        const auto it = last_op.find(edge_key(u, v));
        if (it == last_op.end() || it->second) edges.push_back({u, v});
      }
    }
  }
  for (const EdgeUpdate& e : result.applied) {
    if (e.insert) edges.push_back({e.u, e.v});
  }

  result.after = make_epoch(current_.id + 1, std::make_shared<const CSRGraph>(
                                                 graph::build_csr(n, edges)));
  return result;
}

void VersionedGraph::commit_locked(const CommitResult& staged) {
  if (staged.applied.empty()) return;  // no-op stage: nothing to publish
  if (staged.before.id != current_.id) {
    throw std::logic_error(
        "VersionedGraph::commit: stale stage (another batch committed since)");
  }
  current_ = staged.after;

  if (tracer_ != nullptr) {
    trace::Sink* sink = tracer_->thread_sink();
    if (sink != nullptr && sink->wants(trace::kDyn)) {
      sink->instant("epoch-commit", trace::kDyn, tracer_->now_ns(),
                    {{"epoch", staged.after.id},
                     {"applied", static_cast<std::uint64_t>(staged.applied.size())},
                     {"noops", static_cast<std::uint64_t>(staged.noops)},
                     {"edges", staged.after.graph->num_undirected_edges()}});
    }
  }
}

Epoch VersionedGraph::commit_to_file(const std::string& path, bool compress) const {
  const Epoch snapshot = current();
  graph::io::save_binary_v2(*snapshot.graph, path, compress);
  return snapshot;
}

Epoch VersionedGraph::reopen_from_file(const std::string& path) {
  // Fully open and verify outside the lock — mapping and fingerprint
  // recomputation are O(n+m) and must not block concurrent readers.
  graph::CSRGraph mapped = graph::io::open_mapped(path);
  auto reopened = std::make_shared<const graph::CSRGraph>(std::move(mapped));

  std::lock_guard<std::mutex> lock(mu_);
  if (reopened->fingerprint() != current_.fingerprint) {
    throw graph::storage::FormatError(
        "VersionedGraph::reopen_from_file: '" + path +
        "' holds a different epoch (fingerprint mismatch with the current one)");
  }
  current_.graph = std::move(reopened);  // same epoch id, new backing

  if (tracer_ != nullptr) {
    trace::Sink* sink = tracer_->thread_sink();
    if (sink != nullptr && sink->wants(trace::kDyn)) {
      sink->instant("epoch-reopen", trace::kDyn, tracer_->now_ns(),
                    {{"epoch", current_.id},
                     {"mapped_bytes", static_cast<std::uint64_t>(
                                          current_.graph->storage()->mapped_bytes())}});
    }
  }
  return current_;
}

}  // namespace hbc::dyn
