#include "trace/check.hpp"

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <variant>

namespace hbc::trace {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. Enough for trace files:
// objects, arrays, strings (with escapes), numbers, true/false/null.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(v); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<JsonArray>>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }

  const JsonObject& object() const { return *std::get<std::shared_ptr<JsonObject>>(v); }
  const JsonArray& array() const { return *std::get<std::shared_ptr<JsonArray>>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  double number() const { return std::get<double>(v); }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing content at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(std::string& error, const std::string& what) {
    error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out, std::string& error) {
    if (pos_ >= text_.size()) return fail(error, "unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, error);
      case '[': return parse_array(out, error);
      case '"': {
        std::string s;
        if (!parse_string(s, error)) return false;
        out.v = std::move(s);
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") { pos_ += 4; out.v = true; return true; }
        return fail(error, "bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") { pos_ += 5; out.v = false; return true; }
        return fail(error, "bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") { pos_ += 4; out.v = nullptr; return true; }
        return fail(error, "bad literal");
      default: return parse_number(out, error);
    }
  }

  bool parse_object(JsonValue& out, std::string& error) {
    ++pos_;  // '{'
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out.v = std::move(obj);
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail(error, "expected key");
      std::string key;
      if (!parse_string(key, error)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail(error, "expected ':'");
      ++pos_;
      skip_ws();
      JsonValue val;
      if (!parse_value(val, error)) return false;
      (*obj)[std::move(key)] = std::move(val);
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated object");
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; break; }
      return fail(error, "expected ',' or '}'");
    }
    out.v = std::move(obj);
    return true;
  }

  bool parse_array(JsonValue& out, std::string& error) {
    ++pos_;  // '['
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out.v = std::move(arr);
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue val;
      if (!parse_value(val, error)) return false;
      arr->push_back(std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated array");
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; break; }
      return fail(error, "expected ',' or ']'");
    }
    out.v = std::move(arr);
    return true;
  }

  bool parse_string(std::string& out, std::string& error) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail(error, "bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail(error, "bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail(error, "bad \\u escape");
            }
            pos_ += 4;
            // Trace names are ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail(error, "bad escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail(error, "unterminated string");
  }

  bool parse_number(JsonValue& out, std::string& error) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail(error, "expected value");
    try {
      out.v = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      pos_ = start;
      return fail(error, "bad number");
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonObject& obj, const char* key) {
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

}  // namespace

std::string CheckResult::error_text() const {
  std::ostringstream out;
  for (const auto& e : errors) out << e << "\n";
  return out.str();
}

CheckResult validate_chrome_trace(std::string_view json) {
  CheckResult result;
  auto err = [&](const std::string& message) {
    if (result.errors.size() < 20) result.errors.push_back(message);
  };

  JsonValue root;
  std::string parse_error;
  if (!Parser(json).parse(root, parse_error)) {
    err("JSON parse error: " + parse_error);
    return result;
  }
  if (!root.is_object()) {
    err("top level is not an object");
    return result;
  }
  const JsonValue* events = find(root.object(), "traceEvents");
  if (events == nullptr || !events->is_array()) {
    err("missing \"traceEvents\" array");
    return result;
  }

  // Per-(pid, tid) open-span stack of (name, ts, event index) plus the last
  // timestamp seen, for the monotonicity check.
  struct Timeline {
    std::vector<std::pair<std::string, std::size_t>> open;
    double last_ts = -1.0;
  };
  std::map<std::pair<double, double>, Timeline> timelines;

  const JsonArray& arr = events->array();
  result.total_events = arr.size();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const std::string at = "event " + std::to_string(i);
    if (!arr[i].is_object()) {
      err(at + ": not an object");
      continue;
    }
    const JsonObject& e = arr[i].object();
    const JsonValue* name = find(e, "name");
    const JsonValue* ph = find(e, "ph");
    const JsonValue* pid = find(e, "pid");
    const JsonValue* tid = find(e, "tid");
    if (name == nullptr || !name->is_string()) { err(at + ": missing string \"name\""); continue; }
    if (ph == nullptr || !ph->is_string() || ph->str().size() != 1) {
      err(at + ": missing one-char \"ph\"");
      continue;
    }
    if (pid == nullptr || !pid->is_number()) { err(at + ": missing numeric \"pid\""); continue; }
    const char phase = ph->str()[0];
    if (phase == 'M') {
      ++result.metadata;
      continue;  // metadata carries no ts; tid optional for process_name
    }
    if (tid == nullptr || !tid->is_number()) { err(at + ": missing numeric \"tid\""); continue; }
    const JsonValue* ts = find(e, "ts");
    if (ts == nullptr || !ts->is_number()) { err(at + ": missing numeric \"ts\""); continue; }

    Timeline& tl = timelines[{pid->number(), tid->number()}];
    if (ts->number() < tl.last_ts) {
      err(at + " (\"" + name->str() + "\"): ts decreases within its timeline");
    }
    tl.last_ts = ts->number();

    switch (phase) {
      case 'B':
        tl.open.emplace_back(name->str(), i);
        break;
      case 'E':
        if (tl.open.empty()) {
          err(at + ": \"E\" (\"" + name->str() + "\") with no open span");
        } else if (tl.open.back().first != name->str()) {
          err(at + ": \"E\" (\"" + name->str() + "\") does not nest; open span is \"" +
              tl.open.back().first + "\" from event " +
              std::to_string(tl.open.back().second));
        } else {
          tl.open.pop_back();
          ++result.span_pairs;
        }
        break;
      case 'i': ++result.instants; break;
      case 'C': ++result.counters; break;
      default:
        err(at + ": unknown phase '" + std::string(1, phase) + "'");
    }
  }

  for (const auto& [key, tl] : timelines) {
    for (const auto& [name, index] : tl.open) {
      err("span \"" + name + "\" (event " + std::to_string(index) +
          ") never ends on pid/tid " + std::to_string(key.first) + "/" +
          std::to_string(key.second));
    }
  }

  result.ok = result.errors.empty();
  return result;
}

}  // namespace hbc::trace
