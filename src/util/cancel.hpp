#pragma once

// Cooperative cancellation: a CancelSource owns the cancel state (manual
// cancel plus an optional deadline); CancelTokens are cheap copyable views
// that long-running computations poll at natural stopping points — the BC
// engines check once per root, so a cancel or an expired deadline takes
// effect within one root boundary rather than after the full run.
//
// Two reasons are distinguished because callers react differently:
// hbc::service maps Deadline to QueryStatus::DeadlineExceeded and Manual
// (stop()) to QueryStatus::ServiceStopped. The deadline is latched the
// first time any token observes it expired, which also stamps the cancel
// time so the service can report time-to-cancel.
//
// A default-constructed CancelToken never cancels and costs one pointer
// test per check, so un-cancellable call sites pay (almost) nothing.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace hbc::util {

enum class CancelReason : std::uint8_t {
  None = 0,
  Manual = 1,    // CancelSource::cancel() was called (service stop())
  Deadline = 2,  // the source's deadline passed
};

/// Thrown by CancelToken::check(). Derives from runtime_error so generic
/// catch sites keep working, but resilience-aware layers catch it first
/// and translate the reason instead of reporting a failure.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(CancelReason reason)
      : std::runtime_error(reason == CancelReason::Deadline
                               ? "cancelled: deadline exceeded mid-compute"
                               : "cancelled by caller"),
        reason_(reason) {}

  CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

namespace detail {

struct CancelShared {
  using Clock = std::chrono::steady_clock;

  std::atomic<std::uint8_t> reason{0};
  /// Set once at construction; immutable afterwards (tokens read freely).
  Clock::time_point deadline = Clock::time_point::max();
  bool has_deadline = false;
  /// steady_clock ticks when cancellation was requested / deadline passed.
  std::atomic<std::int64_t> cancelled_at_ns{0};

  CancelReason poll() noexcept {
    auto r = static_cast<CancelReason>(reason.load(std::memory_order_acquire));
    if (r != CancelReason::None) return r;
    if (has_deadline && Clock::now() >= deadline) {
      latch(CancelReason::Deadline, deadline);
      return static_cast<CancelReason>(reason.load(std::memory_order_acquire));
    }
    return CancelReason::None;
  }

  void latch(CancelReason r, Clock::time_point when) noexcept {
    std::uint8_t expected = 0;
    if (reason.compare_exchange_strong(expected, static_cast<std::uint8_t>(r),
                                       std::memory_order_acq_rel)) {
      cancelled_at_ns.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(when.time_since_epoch())
              .count(),
          std::memory_order_release);
    }
  }
};

}  // namespace detail

/// Polling view of a CancelSource. Default-constructed tokens are inert.
class CancelToken {
 public:
  CancelToken() = default;

  /// Why (and whether) the computation should stop; None = keep going.
  CancelReason state() const noexcept {
    return state_ ? state_->poll() : CancelReason::None;
  }

  bool cancelled() const noexcept { return state() != CancelReason::None; }

  /// Throws Cancelled when the source was cancelled or its deadline has
  /// passed. The engines call this once per root.
  void check() const {
    const CancelReason r = state();
    if (r != CancelReason::None) throw Cancelled(r);
  }

  bool can_cancel() const noexcept { return state_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<detail::CancelShared> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CancelShared> state_;
};

/// Owner side: create (optionally with a deadline), hand out tokens, and
/// cancel. Copyable; copies share the same state.
class CancelSource {
 public:
  using Clock = detail::CancelShared::Clock;

  CancelSource() : state_(std::make_shared<detail::CancelShared>()) {}

  static CancelSource with_deadline(Clock::time_point deadline) {
    CancelSource s;
    if (deadline != Clock::time_point::max()) {
      s.state_->deadline = deadline;
      s.state_->has_deadline = true;
    }
    return s;
  }

  static CancelSource with_timeout(std::chrono::nanoseconds budget) {
    return with_deadline(Clock::now() + budget);
  }

  CancelToken token() const { return CancelToken(state_); }

  void cancel() noexcept { state_->latch(CancelReason::Manual, Clock::now()); }

  CancelReason state() const noexcept { return state_->poll(); }

  /// Milliseconds elapsed since cancellation was requested (deadline
  /// passing counts from the deadline itself); 0 if not cancelled. The
  /// service uses this as its time-to-cancel metric when the computation
  /// finally surfaces the Cancelled exception.
  double ms_since_cancel() const noexcept {
    const std::int64_t at = state_->cancelled_at_ns.load(std::memory_order_acquire);
    if (at == 0) return 0.0;
    const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now().time_since_epoch())
                            .count();
    return static_cast<double>(now_ns - at) / 1e6;
  }

 private:
  std::shared_ptr<detail::CancelShared> state_;
};

}  // namespace hbc::util
