#pragma once

// core::approx — stratified root sampling and the refinable estimator
// behind accuracy-contract serving (ROADMAP item 1).
//
// The paper's sampling strategy (Algorithm 5) picks k roots once and
// scales the partial dependency sums by n/k. This header slices that
// same sampled-root sequence into fixed-width *strata* so an estimate
// can be upgraded in place: `sample_roots` is a partial Fisher–Yates
// whose RNG state after i draws depends only on i, so the first k
// entries of a (k+w)-root sample are exactly the k-root sample. Stratum
// s is therefore the slice [s·w, (s+1)·w) of one deterministic
// permutation — computing strata 0..S-1 visits precisely the roots a
// single sample of S·w roots would have visited, in the same order.
//
// A RefinableEstimate folds per-stratum UNSCALED dependency sums
// elementwise in ascending stratum order. Because the fold order is
// fixed and each stratum's scores are themselves bitwise-deterministic
// (BlockDriver's fixed-order block reduction), upgrading a cached
// 256-root estimate to 512 roots by folding strata 2..3 produces bits
// identical to a from-scratch 512-root budgeted run — at every thread
// count, on every engine with deterministic per-stratum output.
//
// Error model: each stratum's partial sum is an i.i.d. observation of
// the same per-vertex random variable (w roots drawn without
// replacement from one shuffled sequence). The relative standard error
// of the pooled estimate is reported as
//
//     Σ_v sqrt(var_s(partial_s[v]) / S)  /  Σ_v mean_s(partial_s[v])
//
// where the n/k scale factor cancels. The *reported* error is the
// running minimum across folds, so it is monotone non-increasing by
// construction; saturation (all n roots folded) reports exactly 0.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/bc.hpp"
#include "graph/types.hpp"

namespace hbc::core {

/// Geometry of the stratified sample. Rung r covers base_strata·2^r
/// strata (so with the defaults: 256, 512, 1024, ... roots), capped at
/// the vertex count. Both values participate in approx_signature, so
/// estimates with different geometry never alias in a cache.
struct StratumPlan {
  /// Roots per stratum. One stratum is the refinement quantum: upgrades
  /// and background refinement advance one stripe at a time.
  std::uint32_t stripe_roots = 128;
  /// Strata in rung 0 — the minimum before a variance (and therefore an
  /// error estimate) exists. Must be >= 2.
  std::uint32_t base_strata = 2;
};

/// Total strata needed to saturate an n-vertex graph (ceil division;
/// the final stratum may be short).
std::uint32_t total_strata(std::size_t n, const StratumPlan& plan);

/// Strata covered by rungs 0..rung inclusive, before the saturation cap.
std::uint32_t strata_for_rung(const StratumPlan& plan, std::uint32_t rung);

/// Root count after folding `strata` strata (min(strata·stripe, n)).
std::size_t roots_for_strata(std::size_t n, const StratumPlan& plan,
                             std::uint32_t strata);

/// The roots of stratum `stratum`: slice [s·w, min((s+1)·w, n)) of the
/// seeded Fisher–Yates permutation shared by every stratum of (n, seed).
/// Empty once the graph is saturated.
std::vector<graph::VertexId> stratum_roots(std::size_t n, const StratumPlan& plan,
                                           std::uint64_t seed,
                                           std::uint32_t stratum);

/// Accumulates per-stratum unscaled dependency sums and derives scores
/// plus a relative standard-error estimate. Plain value type — callers
/// (service::ApproxCache) provide locking.
class RefinableEstimate {
 public:
  RefinableEstimate() = default;
  RefinableEstimate(std::size_t n, StratumPlan plan, std::uint64_t seed);

  const StratumPlan& plan() const noexcept { return plan_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::size_t num_vertices() const noexcept { return n_; }
  std::uint32_t strata_folded() const noexcept { return strata_; }
  std::size_t roots_used() const noexcept { return roots_used_; }
  bool saturated() const noexcept { return roots_used_ >= n_ && n_ > 0; }

  /// Highest rung fully covered by the folded strata (0 while rung 0 is
  /// still incomplete; saturation completes every rung).
  std::uint32_t rung() const noexcept;

  /// Roots of the next stratum to fold; empty when saturated.
  std::vector<graph::VertexId> next_stratum_roots() const;

  /// Fold the next stratum's UNSCALED per-vertex dependency sums (the
  /// scores of a core::compute over exactly next_stratum_roots() with
  /// halve/normalize off). Strata must be folded in ascending order —
  /// that fixed order is the bitwise-determinism contract.
  /// Throws std::invalid_argument on a size mismatch or when saturated.
  void fold(const std::vector<double>& stratum_scores,
            std::size_t stratum_root_count);

  /// Relative standard error of the current estimate: the running
  /// minimum over folds (monotone non-increasing), exactly 0 once
  /// saturated. Before two strata exist no variance exists, so the
  /// error is UNKNOWN and reported as +infinity — an accuracy contract
  /// can never be "met" by an empty estimate. Degenerate all-zero
  /// scores report 0.
  double reported_error() const noexcept {
    if (saturated()) return 0.0;
    return have_reported_ ? reported_
                          : std::numeric_limits<double>::infinity();
  }

  /// The instantaneous (non-monotone) inter-stratum error estimate.
  double stderr_estimate() const;

  /// Finalized scores: raw sums scaled by n/roots_used (the paper's
  /// unbiased scale-up), then halved / normalized exactly as
  /// core::compute does. Elementwise over the folded sums, so two
  /// estimates with bitwise-equal folds produce bitwise-equal scores.
  std::vector<double> scores(bool halve_undirected, bool normalize) const;

  /// Approximate heap footprint, for cache accounting.
  std::size_t bytes() const noexcept;

 private:
  std::size_t n_ = 0;
  StratumPlan plan_;
  std::uint64_t seed_ = 42;
  std::uint32_t strata_ = 0;
  std::size_t roots_used_ = 0;
  double reported_ = 0.0;          // running-min relative stderr
  bool have_reported_ = false;
  std::vector<double> raw_sums_;   // Σ_s partial_s[v]
  std::vector<double> raw_sq_;     // Σ_s partial_s[v]^2  (for the variance)
};

/// Cache signature for a refinable estimate: options_signature of the
/// request with roots/sample_roots cleared (every rung of one contract
/// shares a cache entry) plus a ";stratified=<stripe>,<base>" suffix so
/// stratified estimates never alias exact results or each other across
/// plan geometries. Exact-query signature bytes are untouched — the
/// suffix exists only on this budgeted-path key.
std::string approx_signature(const Options& options, const StratumPlan& plan);

}  // namespace hbc::core
