// kernels::BlockDriver: the block→host-thread mapping must never change
// observable results. Every strategy is swept across host-thread counts
// on directed and undirected graphs, asserting bitwise-identical BC
// vectors and identical simulated-cycle accounting — the determinism
// contract that lets core::options_signature exclude cpu_threads for
// GPU-model strategies (and the service cache serve any thread count).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::VertexId;
using kernels::RunConfig;
using kernels::RunResult;
using kernels::Strategy;

constexpr Strategy kAllStrategies[] = {
    Strategy::VertexParallel, Strategy::EdgeParallel, Strategy::GpuFan,
    Strategy::WorkEfficient,  Strategy::Hybrid,       Strategy::Sampling,
    Strategy::DirectionOptimized,
};

RunConfig small_device_config() {
  RunConfig config;
  config.device = gpusim::gtx_titan();
  // Shrink thresholds so hybrid/sampling decision logic triggers at
  // test scale (same knobs as test_kernels.cpp).
  config.hybrid.alpha = 24;
  config.hybrid.beta = 16;
  config.sampling.n_samps = 16;
  config.sampling.min_frontier = 16;
  return config;
}

CSRGraph undirected_graph() {
  return graph::gen::small_world({.num_vertices = 400, .k = 6, .seed = 3});
}

CSRGraph directed_graph() {
  // Random directed edges, NOT symmetrized: exercises the kernels on
  // asymmetric adjacency so thread scheduling can't hide behind the
  // undirected structure.
  const VertexId n = 300;
  util::Xoshiro256 rng(11);
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 1500; ++i) {
    const VertexId u = static_cast<VertexId>(rng.next_below(n));
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    edges.push_back({u, v});
  }
  return graph::build_csr(n, edges, {.symmetrize = false});
}

void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0) << what;
  }
}

void expect_identical_metrics(const kernels::RunMetrics& a, const kernels::RunMetrics& b,
                              const std::string& what) {
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles) << what;
  EXPECT_EQ(a.we_levels, b.we_levels) << what;
  EXPECT_EQ(a.ep_levels, b.ep_levels) << what;
  EXPECT_EQ(a.device_memory_high_water, b.device_memory_high_water) << what;
  EXPECT_EQ(a.sampling_chose_edge_parallel, b.sampling_chose_edge_parallel) << what;
  EXPECT_EQ(a.sampling_median_depth, b.sampling_median_depth) << what;
  EXPECT_EQ(a.per_root_cycles, b.per_root_cycles) << what;

  EXPECT_EQ(a.counters.edges_traversed, b.counters.edges_traversed) << what;
  EXPECT_EQ(a.counters.edges_inspected, b.counters.edges_inspected) << what;
  EXPECT_EQ(a.counters.vertices_scanned, b.counters.vertices_scanned) << what;
  EXPECT_EQ(a.counters.queue_inserts, b.counters.queue_inserts) << what;
  EXPECT_EQ(a.counters.atomic_ops, b.counters.atomic_ops) << what;
  EXPECT_EQ(a.counters.barriers, b.counters.barriers) << what;
  EXPECT_EQ(a.counters.grid_syncs, b.counters.grid_syncs) << what;
  EXPECT_EQ(a.counters.bfs_iterations, b.counters.bfs_iterations) << what;
  EXPECT_EQ(a.counters.roots_processed, b.counters.roots_processed) << what;
}

TEST(BlockDriverDeterminism, AllStrategiesBitwiseIdenticalAcrossThreadCounts) {
  const CSRGraph undirected = undirected_graph();
  const CSRGraph directed = directed_graph();

  struct NamedGraph {
    const CSRGraph* g;
    const char* name;
  };
  const NamedGraph graphs[] = {{&undirected, "undirected"}, {&directed, "directed"}};

  for (const NamedGraph& ng : graphs) {
    for (const Strategy strategy : kAllStrategies) {
      RunConfig baseline_config = small_device_config();
      baseline_config.collect_root_cycles = true;
      baseline_config.cpu_threads = 1;
      const RunResult baseline = kernels::run_strategy(strategy, *ng.g, baseline_config);

      for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        RunConfig config = baseline_config;
        config.cpu_threads = threads;
        const RunResult r = kernels::run_strategy(strategy, *ng.g, config);
        const std::string what = std::string(kernels::to_string(strategy)) + "/" +
                                 ng.name + "/threads=" + std::to_string(threads);
        expect_bitwise_equal(r.bc, baseline.bc, what);
        expect_identical_metrics(r.metrics, baseline.metrics, what);
      }
    }
  }
}

TEST(BlockDriverDeterminism, PerRootStatsIdenticalAcrossThreadCounts) {
  const CSRGraph g = undirected_graph();
  const std::vector<VertexId> roots{3, 50, 199, 7, 321};

  RunConfig config = small_device_config();
  config.roots = roots;
  config.collect_per_root_stats = true;

  config.cpu_threads = 1;
  const RunResult serial = kernels::run_hybrid(g, config);
  config.cpu_threads = 8;
  const RunResult threaded = kernels::run_hybrid(g, config);

  ASSERT_EQ(serial.per_root.size(), roots.size());
  ASSERT_EQ(threaded.per_root.size(), roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    // Stats come back in root order regardless of which thread ran them.
    EXPECT_EQ(serial.per_root[i].root, roots[i]);
    EXPECT_EQ(threaded.per_root[i].root, roots[i]);
    EXPECT_EQ(serial.per_root[i].max_depth, threaded.per_root[i].max_depth);
    ASSERT_EQ(serial.per_root[i].iterations.size(), threaded.per_root[i].iterations.size());
    for (std::size_t j = 0; j < serial.per_root[i].iterations.size(); ++j) {
      EXPECT_EQ(serial.per_root[i].iterations[j].cycles,
                threaded.per_root[i].iterations[j].cycles);
      EXPECT_EQ(serial.per_root[i].iterations[j].vertex_frontier,
                threaded.per_root[i].iterations[j].vertex_frontier);
    }
  }
}

TEST(BlockDriverDeterminism, ThreadCountBeyondBlocksIsHarmless) {
  // More host threads than simulated blocks (gtx_titan has 14 SMs) must
  // clamp, not misbehave.
  const CSRGraph g = undirected_graph();
  RunConfig config = small_device_config();
  config.cpu_threads = 1;
  const RunResult serial = kernels::run_work_efficient(g, config);
  config.cpu_threads = 64;
  const RunResult wide = kernels::run_work_efficient(g, config);
  expect_bitwise_equal(wide.bc, serial.bc, "threads=64");
  EXPECT_EQ(wide.metrics.elapsed_cycles, serial.metrics.elapsed_cycles);
}

TEST(BlockDriverDeterminism, DefaultThreadsMatchExplicitOne) {
  // cpu_threads = 0 (hardware concurrency) still yields the serial bits.
  const CSRGraph g = directed_graph();
  RunConfig config = small_device_config();
  config.cpu_threads = 1;
  const RunResult serial = kernels::run_sampling(g, config);
  config.cpu_threads = 0;
  const RunResult defaulted = kernels::run_sampling(g, config);
  expect_bitwise_equal(defaulted.bc, serial.bc, "threads=default");
  expect_identical_metrics(defaulted.metrics, serial.metrics, "threads=default");
}

}  // namespace
