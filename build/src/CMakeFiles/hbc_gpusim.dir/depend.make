# Empty dependencies file for hbc_gpusim.
# This may be replaced when dependencies are built.
