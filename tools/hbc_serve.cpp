// hbc-serve — drive the BC query service with a workload and print its
// metrics report. Three roles (docs/distributed.md):
//
//   hbc-serve [options] <graph-spec> ...                      # standalone
//   hbc-serve --role coordinator --listen unix:/run/hbc.sock \
//             --expect-workers 2 [options] <graph-spec> ...   # fleet front
//   hbc-serve --role worker --connect unix:/run/hbc.sock      # fleet member
//
// Graph specs are the same as hbc: a METIS/.mtx/SNAP/.hbc file or a
// generator spec gen:<family>:<scale>[:<seed>]. The i-th graph is
// registered as "g<i>" (g0, g1, ...). In coordinator mode the spec string
// itself is sent to workers, which materialize and fingerprint-verify it —
// so generator specs work with no shared filesystem. Workers take no graph
// arguments; the coordinator tells them what to load.
//
// Distributed options:
//   --role R          coordinator | worker | standalone (default standalone)
//   --listen EP       coordinator bind endpoint: unix:/path or tcp:host:port
//   --connect EP      worker: coordinator endpoint to join
//   --expect-workers N  coordinator: wait for N workers before replaying
//                     (error if they do not arrive within 30 s)
//   --replication N   workers per graph on the consistent-hash ring
//                     (default 0 = every worker)
//   --straggler-ms MS re-dispatch a shard still unanswered after MS to a
//                     second worker, first result wins (default off)
//   --die-after-shards N  worker chaos hook: drop the connection when the
//                     Nth shard arrives (crash testing; default off)
//   --connect-attempts N  worker connect retries with backoff (default 60)
//
// Fleet self-healing (docs/resilience.md):
//   --chaos SPEC      seeded network fault injection on this process's
//                     outbound frames (both roles), e.g.
//                     "seed=11;drop,rate=0.05;partition,after=40,for=20"
//   --rejoin N        worker: reconnect + re-Hello up to N times after a
//                     lost connection (default 0 = give up like before)
//   --heartbeat-ms MS worker: liveness heartbeat cadence (default 1000)
//   --heartbeat-timeout MS  coordinator: quarantine a ready worker silent
//                     this long, reassigning its shards (default off)
//   --snapshot-dir DIR  coordinator: durable warm restart — snapshot the
//                     graph registry + result-cache index there on every
//                     registry change, restore from it at startup
//   --restart-mid     coordinator: simulate a crash at the workload
//                     midpoint — destroy the coordinator WITHOUT drain,
//                     restart it from --snapshot-dir (required), wait for
//                     the fleet to rejoin, finish the replay. The score
//                     dump stays byte-identical to an uninterrupted run.
//
// On bind/listen/connect failure both roles exit 1 with one clear
// "error: syscall(endpoint): reason" line.
//
// Options:
//   --workers N       worker threads draining the queue (default: hardware)
//   --queue N         admission queue bound (default 64)
//   --policy P        block | reject | shed on a full queue (default block)
//   --shed-roots K    sample roots a shed request is downgraded to (64)
//   --cache-mb M      result-cache budget in MiB; 0 disables (default 256)
//   --requests N      synthetic workload size (default 200)
//   --hit-ratio P     fraction of requests re-drawn from a small warm set
//                     of repeated queries, in [0,1] (default 0.5)
//   --distinct K      size of that warm set (default 8)
//   --strategy NAME   strategy for synthetic queries (default sampling)
//   --roots K         sample_roots per synthetic query (default 32)
//   --accuracy T      accuracy-contract queries (docs/serving.md): every
//                     request carries a QueryBudget with relative-stderr
//                     target T in (0,1]; responses report the estimate
//                     actually served (roots used, stderr, rung)
//   --budget-roots K  budget root cap — "best estimate from at most K
//                     roots" (combines with --accuracy; either activates
//                     the budgeted path)
//   --refine          serve budgeted queries at rung 0 and refine toward
//                     the contract in the background; the replay drains
//                     the refinement queue before printing metrics
//   --threads N       cpu_threads for the CPU-parallel strategies (0=hw)
//   --top K           request top-k extraction per query (default 10)
//   --timeout MS      per-request deadline in milliseconds (default none)
//   --seed S          workload RNG seed (default 7)
//   --workload FILE   file-driven workload instead of the synthetic one:
//                     one request per line, "graph_id strategy roots seed",
//                     '#' starts a comment
//   --mutate FILE     scripted edge-update batches (docs/dynamic.md):
//                     "graph_id + u v" inserts, "graph_id - u v" removes,
//                     a "commit" line flushes the pending per-graph batches
//                     as one epoch each (EOF commits too), '#' comments.
//                     The script runs at the workload's midpoint — half the
//                     replay sees the old epochs, half the new — and the
//                     per-commit MutationResult is printed
//   --refresh         enable the background cache refresher so mutations
//                     patch hot exact entries instead of dropping them
//   --refresh-budget N  entries patched per mutation (default 4)
//   --inject-faults SPEC  attach a deterministic fault plan to every
//                     request (docs/resilience.md grammar), exercising the
//                     service's retry and degradation ladder
//   --max-attempts N  per-root launch budget inside each run (default 3)
//   --retries N       whole-run retries after transient failure (default 2)
//   --no-fallback     disable the CPU/sampling degradation ladder
//   --fallback-roots K  sample width of the final ladder rung (default 64)
//   --trace-dir DIR   capture request-lifecycle spans for the replay and
//                     write DIR/serve.json (Chrome trace_event JSON) and
//                     DIR/serve-summary.txt; DIR is created if needed
//   --dump-scores FILE  after the replay, run one canonical query per graph
//                     (the configured strategy/roots, seed --seed, no fault
//                     plan) and append each full score array to FILE as raw
//                     little-endian doubles. Works in standalone and
//                     coordinator roles, so a fleet run over an mmap'd
//                     .hbcg and a heap-backed standalone run can be
//                     compared byte-for-byte with cmp (the CI out-of-core
//                     smoke job does exactly that)
//
// Exit code 0 when every request completed Ok (rejections under --policy
// reject/deadline are reported but still exit 0: they are the service
// behaving as configured); 1 on setup errors; 2 on bad usage.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "net/coordinator.hpp"
#include "net/worker.hpp"

namespace {

using namespace hbc;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue N] [--policy block|reject|shed]\n"
               "          [--shed-roots K] [--cache-mb M] [--requests N]\n"
               "          [--hit-ratio P] [--distinct K] [--strategy NAME]\n"
               "          [--roots K] [--accuracy T] [--budget-roots K] [--refine]\n"
               "          [--threads N] [--top K] [--timeout MS]\n"
               "          [--seed S] [--workload FILE] [--inject-faults SPEC]\n"
               "          [--max-attempts N] [--retries N] [--no-fallback]\n"
               "          [--fallback-roots K] [--trace-dir DIR]\n"
               "          [--mutate FILE] [--refresh] [--refresh-budget N]\n"
               "          [--dump-scores FILE]\n"
               "          [--role coordinator|worker|standalone]\n"
               "          [--listen EP] [--connect EP] [--expect-workers N]\n"
               "          [--replication N] [--straggler-ms MS]\n"
               "          [--die-after-shards N] [--connect-attempts N]\n"
               "          [--chaos SPEC] [--rejoin N] [--heartbeat-ms MS]\n"
               "          [--heartbeat-timeout MS] [--snapshot-dir DIR]\n"
               "          [--restart-mid]\n"
               "          <graph-file | gen:<family>:<scale>[:<seed>]> ...\n"
               "endpoints EP: unix:/path/to.sock or tcp:host:port\n",
               argv0);
  std::exit(2);
}

struct ServeArgs {
  service::ServiceConfig config;
  std::size_t requests = 200;
  double hit_ratio = 0.5;
  std::size_t distinct = 8;
  core::Strategy strategy = core::Strategy::Sampling;
  std::uint32_t sample_roots = 32;
  service::QueryBudget budget;  // active() => accuracy-contract workload
  std::size_t cpu_threads = 0;
  std::size_t top_k = 10;
  std::chrono::milliseconds timeout{0};
  std::uint64_t seed = 7;
  std::string workload_file;
  std::string mutate_file;
  std::string trace_dir;
  std::string dump_scores_path;
  std::shared_ptr<const gpusim::FaultPlan> fault_plan;
  std::uint32_t max_root_attempts = 3;
  std::vector<std::string> graph_specs;
  // Distributed roles (docs/distributed.md).
  std::string role = "standalone";
  std::string listen_spec;
  std::string connect_spec;
  std::size_t expect_workers = 0;
  std::uint32_t replication = 0;
  std::uint64_t straggler_ms = 0;
  std::uint32_t die_after_shards = 0;
  std::uint32_t connect_attempts = 60;
  // Fleet self-healing.
  std::shared_ptr<const net::ChaosPlan> chaos;
  std::uint32_t rejoin = 0;
  std::uint64_t heartbeat_ms = 1000;
  std::uint64_t heartbeat_timeout_ms = 0;
  std::string snapshot_dir;
  bool restart_mid = false;
};

std::vector<service::Request> synthetic_workload(const ServeArgs& args,
                                                 std::size_t num_graphs) {
  // The warm set is `distinct` fixed queries; each request either re-draws
  // one of them (probability hit_ratio -> a cache hit once warm) or gets a
  // unique seed (a guaranteed miss).
  std::vector<service::Request> warm;
  for (std::size_t i = 0; i < args.distinct; ++i) {
    service::Request r;
    r.graph_id = "g" + std::to_string(i % num_graphs);
    r.options.strategy = args.strategy;
    r.options.sample_roots = args.budget.active() ? 0 : args.sample_roots;
    r.budget = args.budget;
    r.options.seed = 1000 + i;
    r.options.cpu_threads = args.cpu_threads;
    r.options.resilience.fault_plan = args.fault_plan;
    r.options.resilience.max_root_attempts = args.max_root_attempts;
    r.top_k = args.top_k;
    r.timeout = args.timeout;
    warm.push_back(std::move(r));
  }

  util::Xoshiro256 rng(args.seed);
  std::vector<service::Request> out;
  out.reserve(args.requests);
  std::uint64_t unique_seed = 1u << 20;
  for (std::size_t i = 0; i < args.requests; ++i) {
    if (rng.next_double() < args.hit_ratio) {
      out.push_back(warm[rng.next_below(warm.size())]);
    } else {
      service::Request r = warm[rng.next_below(warm.size())];
      r.options.seed = unique_seed++;
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<service::Request> file_workload(const ServeArgs& args) {
  std::ifstream in(args.workload_file);
  if (!in) throw std::runtime_error("cannot read workload file " + args.workload_file);
  std::vector<service::Request> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string graph_id, strategy;
    std::uint32_t roots = 0;
    std::uint64_t seed = 0;
    if (!(fields >> graph_id)) continue;  // blank line
    if (!(fields >> strategy >> roots >> seed)) {
      throw std::runtime_error("workload line " + std::to_string(lineno) +
                               ": expected 'graph_id strategy roots seed'");
    }
    service::Request r;
    r.graph_id = graph_id;
    r.options.strategy = core::strategy_from_string(strategy);
    r.options.sample_roots = args.budget.active() ? 0 : roots;
    r.budget = args.budget;
    r.options.seed = seed;
    r.options.cpu_threads = args.cpu_threads;
    r.options.resilience.fault_plan = args.fault_plan;
    r.options.resilience.max_root_attempts = args.max_root_attempts;
    r.top_k = args.top_k;
    r.timeout = args.timeout;
    out.push_back(std::move(r));
  }
  return out;
}

/// One scripted epoch transition: the batches to commit, one per graph.
using MutationStep = std::map<std::string, dyn::UpdateBatch>;

std::vector<MutationStep> parse_mutation_script(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read mutation script " + path);
  std::vector<MutationStep> steps;
  MutationStep pending;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string graph_id;
    if (!(fields >> graph_id)) continue;  // blank line
    if (graph_id == "commit") {
      if (!pending.empty()) steps.push_back(std::move(pending));
      pending.clear();
      continue;
    }
    std::string op;
    graph::VertexId u = 0, v = 0;
    if (!(fields >> op >> u >> v) || (op != "+" && op != "-")) {
      throw std::runtime_error("mutation script line " + std::to_string(lineno) +
                               ": expected 'graph_id +|- u v' or 'commit'");
    }
    if (op == "+") {
      pending[graph_id].insert(u, v);
    } else {
      pending[graph_id].remove(u, v);
    }
  }
  if (!pending.empty()) steps.push_back(std::move(pending));
  return steps;
}

/// What the accuracy-contract replay actually got back (--accuracy /
/// --budget-roots): the served-estimate spread across all Ok responses.
struct ApproxTally {
  std::size_t with_estimate = 0;
  std::size_t refining = 0;
  std::size_t min_roots = 0, max_roots = 0;
  double min_stderr = 0.0, max_stderr = 0.0;

  void add(const service::Response& r) {
    if (!r.estimate) return;
    const service::Estimate& e = *r.estimate;
    if (with_estimate == 0) {
      min_roots = max_roots = e.roots_used;
      min_stderr = max_stderr = e.stderr_est;
    } else {
      min_roots = std::min(min_roots, e.roots_used);
      max_roots = std::max(max_roots, e.roots_used);
      min_stderr = std::min(min_stderr, e.stderr_est);
      max_stderr = std::max(max_stderr, e.stderr_est);
    }
    ++with_estimate;
    refining += e.refining ? 1 : 0;
  }

  void print() const {
    if (with_estimate == 0) return;
    std::printf("  %-18s %zu (roots %zu..%zu, stderr %.3g..%.3g, refining %zu)\n",
                "(estimates)", with_estimate, min_roots, max_roots, min_stderr,
                max_stderr, refining);
  }
};

/// Submit + wait one slice of the workload, folding statuses into the
/// running tally. (Mutation runs between slices, so each slice is its own
/// submit wave: requests in the second wave key off the new fingerprints.)
void replay_slice(service::BcService& svc,
                  std::span<const service::Request> slice,
                  std::map<std::string, std::size_t>& by_status,
                  std::size_t& degraded, ApproxTally& approx) {
  std::vector<service::Ticket> tickets;
  tickets.reserve(slice.size());
  for (const auto& request : slice) tickets.push_back(svc.submit(request));
  for (const auto& ticket : tickets) {
    const service::Response r = svc.wait(ticket);
    ++by_status[to_string(r.status)];
    degraded += r.degraded ? 1 : 0;
    approx.add(r);
  }
}

void run_mutations(service::BcService& svc, const std::vector<MutationStep>& steps) {
  for (std::size_t i = 0; i < steps.size(); ++i) {
    for (const auto& [graph_id, batch] : steps[i]) {
      const service::MutationResult mr = svc.mutate_graph(graph_id, batch);
      std::printf(
          "mutate #%zu %-4s epoch=%llu applied=%zu noops=%zu "
          "fingerprint %016llx -> %016llx invalidated=%zu refresh_queued=%zu\n",
          i + 1, graph_id.c_str(), static_cast<unsigned long long>(mr.epoch),
          mr.applied, mr.noops,
          static_cast<unsigned long long>(mr.fingerprint_before),
          static_cast<unsigned long long>(mr.fingerprint_after),
          mr.cache_invalidated, mr.cache_refresh_queued);
    }
    // Drain between steps: otherwise a later commit supersedes the
    // previous epoch before the refresher reaches it and every queued
    // entry is dropped instead of patched.
    svc.drain_refreshes();
  }
}

/// --dump-scores: one canonical query per graph (deterministic options, no
/// fault plan), full score arrays appended to `path` as raw little-endian
/// doubles. `query` maps a Request to a Response — svc.submit+wait in
/// standalone, Coordinator::query in a fleet — so the two roles produce
/// byte-identical files when the math is byte-identical.
template <class QueryFn>
void dump_canonical_scores(const std::string& path, std::size_t num_graphs,
                           const ServeArgs& args, QueryFn&& query) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_graphs; ++i) {
    service::Request r;
    r.graph_id = "g" + std::to_string(i);
    r.options.strategy = args.strategy;
    r.options.sample_roots = args.sample_roots;
    r.options.seed = args.seed;
    r.options.cpu_threads = args.cpu_threads;
    r.top_k = 0;
    const service::Response resp = query(r);
    if (!resp.ok() || !resp.result) {
      throw std::runtime_error("--dump-scores query on " + r.graph_id +
                               " failed: " +
                               (resp.error.empty() ? to_string(resp.status)
                                                   : resp.error));
    }
    const std::vector<double>& scores = resp.result->scores;
    out.write(reinterpret_cast<const char*>(scores.data()),
              static_cast<std::streamsize>(scores.size() * sizeof(double)));
    total += scores.size();
  }
  if (!out) throw std::runtime_error("short write to " + path);
  std::printf("dumped %zu raw scores (%zu graph(s)) to %s\n", total, num_graphs,
              path.c_str());
}

void export_trace(trace::Tracer& tracer, const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string json_path = dir + "/serve.json";
  cli::write_trace_json(tracer, json_path);
  std::ofstream summary(dir + "/serve-summary.txt");
  tracer.write_summary(summary);
  std::printf("\ntrace: %s -> %s\n", cli::trace_stats_line(tracer).c_str(),
              json_path.c_str());
}

/// --role worker: connect, serve shards until drained or the coordinator
/// goes away. No graph arguments — the coordinator says what to load.
int run_worker(const ServeArgs& args, trace::Tracer& tracer) {
  net::WorkerConfig wc;
  wc.connect = net::Endpoint::parse(args.connect_spec);
  wc.service = args.config;
  wc.max_connect_attempts = args.connect_attempts;
  wc.die_after_shards = args.die_after_shards;
  wc.rejoin_attempts = args.rejoin;
  wc.heartbeat_interval = std::chrono::milliseconds(args.heartbeat_ms);
  wc.chaos = args.chaos;
  if (!args.trace_dir.empty()) wc.tracer = &tracer;

  std::printf("worker connecting to %s\n", args.connect_spec.c_str());
  net::Worker worker(wc);
  try {
    worker.run();
  } catch (const net::NetError&) {
    // A worker that loses its coordinator for good (rejoin attempts
    // exhausted against a dead socket) still owes its trace — the
    // postmortem is exactly when the capture matters. Flush, then let
    // main's catch report the error and exit 1.
    if (!args.trace_dir.empty()) export_trace(tracer, args.trace_dir);
    throw;
  }

  const net::WorkerStats& s = worker.stats();
  std::printf("worker done: shards served=%llu refused=%llu graphs=%llu "
              "mutations=%llu reconnects=%llu heartbeat_misses=%llu "
              "quarantine_notices=%llu\n",
              static_cast<unsigned long long>(s.shards_served),
              static_cast<unsigned long long>(s.shards_refused),
              static_cast<unsigned long long>(s.graphs_loaded),
              static_cast<unsigned long long>(s.mutations),
              static_cast<unsigned long long>(s.reconnects),
              static_cast<unsigned long long>(s.heartbeat_misses),
              static_cast<unsigned long long>(s.quarantine_notices));
  if (args.chaos) {
    const net::ChaosStats cs = args.chaos->stats();
    std::printf("chaos: frames=%llu injected=%llu (drop=%llu delay=%llu "
                "dup=%llu trunc=%llu flip=%llu partition=%llu)\n",
                static_cast<unsigned long long>(cs.frames),
                static_cast<unsigned long long>(cs.injected()),
                static_cast<unsigned long long>(cs.dropped),
                static_cast<unsigned long long>(cs.delayed),
                static_cast<unsigned long long>(cs.duplicated),
                static_cast<unsigned long long>(cs.truncated),
                static_cast<unsigned long long>(cs.flipped),
                static_cast<unsigned long long>(cs.partitioned));
  }
  if (!args.trace_dir.empty()) export_trace(tracer, args.trace_dir);
  return 0;
}

/// --role coordinator: bind, wait for the fleet, load the graphs by spec,
/// replay the workload through Coordinator::query (sequential — shard
/// parallelism across workers is where the concurrency lives).
int run_coordinator(const ServeArgs& args, trace::Tracer& tracer) {
  net::CoordinatorConfig cc;
  cc.listen = net::Endpoint::parse(args.listen_spec);
  cc.cache_bytes = args.config.cache_bytes;
  cc.replication = args.replication;
  cc.straggler_timeout = std::chrono::milliseconds(args.straggler_ms);
  cc.heartbeat_timeout = std::chrono::milliseconds(args.heartbeat_timeout_ms);
  cc.chaos = args.chaos;
  cc.snapshot_dir = args.snapshot_dir;
  if (!args.trace_dir.empty()) cc.tracer = &tracer;

  auto report_restore = [](const net::Coordinator& c) {
    const net::SnapshotInfo& si = c.snapshot_info();
    if (!si.attempted) return;
    if (si.ok) {
      std::printf("snapshot restored: %zu graph(s), %zu cache entr%s\n",
                  si.graphs, si.cache_entries, si.cache_entries == 1 ? "y" : "ies");
    } else if (!si.error.empty()) {
      std::printf("snapshot restore failed (starting fresh): %s\n",
                  si.error.c_str());
    }
  };
  auto await_fleet = [&](net::Coordinator& c) {
    if (args.expect_workers == 0) return;
    const std::size_t ready =
        c.wait_for_workers(args.expect_workers, std::chrono::seconds(30));
    if (ready < args.expect_workers) {
      throw std::runtime_error("only " + std::to_string(ready) + " of " +
                               std::to_string(args.expect_workers) +
                               " expected workers joined within 30 s");
    }
    std::printf("%zu workers ready\n", ready);
  };

  auto coord = std::make_unique<net::Coordinator>(cc);  // NetError on bind -> exit 1
  std::printf("coordinator listening on %s\n", args.listen_spec.c_str());
  report_restore(*coord);
  await_fleet(*coord);

  for (std::size_t i = 0; i < args.graph_specs.size(); ++i) {
    graph::CSRGraph g = cli::load_graph_spec(args.graph_specs[i]);
    const std::string id = "g" + std::to_string(i);
    std::printf("loaded %-4s %s\n", id.c_str(), g.summary().c_str());
    const std::size_t confirmed =
        coord->load_graph(id, std::move(g), args.graph_specs[i]);
    std::printf("placed %-4s on %zu worker(s), fingerprint %016llx\n",
                id.c_str(), confirmed,
                static_cast<unsigned long long>(coord->graph_fingerprint(id)));
  }

  const std::vector<service::Request> workload =
      args.workload_file.empty() ? synthetic_workload(args, args.graph_specs.size())
                                 : file_workload(args);
  std::printf("replaying %zu requests (%s workload) across %zu workers, "
              "replication=%u cache=%zu MiB\n",
              workload.size(), args.workload_file.empty() ? "synthetic" : "file",
              coord->worker_count(), args.replication,
              args.config.cache_bytes >> 20);

  const std::vector<MutationStep> mutations =
      args.mutate_file.empty() ? std::vector<MutationStep>{}
                               : parse_mutation_script(args.mutate_file);

  std::map<std::string, std::size_t> by_status;
  std::size_t degraded = 0;
  ApproxTally approx;
  auto replay = [&](std::span<const service::Request> slice) {
    for (const auto& request : slice) {
      const service::Response r = coord->query(request);
      ++by_status[to_string(r.status)];
      degraded += r.degraded ? 1 : 0;
      approx.add(r);
    }
  };

  util::Timer wall;
  const std::span<const service::Request> all(workload);
  if (mutations.empty() && !args.restart_mid) {
    replay(all);
  } else {
    const std::size_t mid = workload.size() / 2;
    replay(all.subspan(0, mid));
    if (args.restart_mid) {
      // Simulated crash: tear the coordinator down with NO drain — workers
      // see the connection die, back off, and rejoin (--rejoin on their
      // side); the successor restores the registry + cache from the
      // snapshot and resumes the replay where the predecessor stopped.
      std::printf("\n-- simulated coordinator crash at request %zu --\n", mid);
      coord.reset();
      coord = std::make_unique<net::Coordinator>(cc);
      std::printf("coordinator restarted on %s\n", args.listen_spec.c_str());
      report_restore(*coord);
      await_fleet(*coord);
    }
    for (std::size_t i = 0; i < mutations.size(); ++i) {
      for (const auto& [graph_id, batch] : mutations[i]) {
        const service::MutationResult mr = coord->mutate_graph(graph_id, batch);
        std::printf(
            "mutate #%zu %-4s epoch=%llu applied=%zu noops=%zu "
            "fingerprint %016llx -> %016llx invalidated=%zu\n",
            i + 1, graph_id.c_str(), static_cast<unsigned long long>(mr.epoch),
            mr.applied, mr.noops,
            static_cast<unsigned long long>(mr.fingerprint_before),
            static_cast<unsigned long long>(mr.fingerprint_after),
            mr.cache_invalidated);
      }
    }
    replay(all.subspan(mid));
  }
  if (args.budget.allow_refinement) {
    // The coordinator has no background thread: pump the loop until the
    // refinement queue drains so the metrics (and trace) show the full
    // ladder, not just rung 0.
    while (coord->refine_backlog() > 0) {
      coord->run_for(std::chrono::milliseconds(20));
    }
  }
  const double wall_s = wall.elapsed_seconds();

  std::printf("\nreplay finished in %.3f s (%.1f QPS)\n", wall_s,
              static_cast<double>(workload.size()) / wall_s);
  for (const auto& [status, count] : by_status) {
    std::printf("  %-18s %zu\n", status.c_str(), count);
  }
  if (degraded > 0) std::printf("  %-18s %zu\n", "(degraded)", degraded);
  approx.print();

  std::printf("\n%s", coord->metrics_report().c_str());

  if (!args.dump_scores_path.empty()) {
    dump_canonical_scores(args.dump_scores_path, args.graph_specs.size(), args,
                          [&](const service::Request& r) { return coord->query(r); });
  }

  coord->drain();
  if (!args.trace_dir.empty()) export_trace(tracer, args.trace_dir);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeArgs args;
  args.config.admission.policy = service::AdmissionPolicy::Block;

  cli::ArgCursor cursor(argc, argv);
  try {
    while (!cursor.done()) {
      const std::string arg = cursor.take();
      if (arg == "--workers") {
        args.config.workers = cli::parse_size(arg, cursor.value(arg));
      } else if (arg == "--queue") {
        args.config.admission.max_queue_depth = cli::parse_size(arg, cursor.value(arg));
      } else if (arg == "--policy") {
        args.config.admission.policy =
            service::admission_policy_from_string(cursor.value(arg));
      } else if (arg == "--shed-roots") {
        args.config.admission.shed_sample_roots = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--cache-mb") {
        args.config.cache_bytes = cli::parse_u64(arg, cursor.value(arg)) << 20;
      } else if (arg == "--requests") {
        args.requests = cli::parse_size(arg, cursor.value(arg));
      } else if (arg == "--hit-ratio") {
        args.hit_ratio = cli::parse_double(arg, cursor.value(arg));
      } else if (arg == "--distinct") {
        args.distinct = std::max<std::size_t>(1, cli::parse_size(arg, cursor.value(arg)));
      } else if (arg == "--strategy") {
        args.strategy = core::strategy_from_string(cursor.value(arg));
      } else if (arg == "--roots") {
        args.sample_roots = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--accuracy") {
        args.budget.accuracy_target = cli::parse_double(arg, cursor.value(arg));
        if (!(args.budget.accuracy_target > 0.0) ||
            args.budget.accuracy_target > 1.0) {
          throw cli::UsageError("--accuracy must be in (0, 1]");
        }
      } else if (arg == "--budget-roots") {
        args.budget.max_roots = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--refine") {
        args.budget.allow_refinement = true;
      } else if (arg == "--threads") {
        args.cpu_threads = cli::parse_size(arg, cursor.value(arg));
      } else if (arg == "--top") {
        args.top_k = cli::parse_size(arg, cursor.value(arg));
      } else if (arg == "--timeout") {
        args.timeout =
            std::chrono::milliseconds(cli::parse_u64(arg, cursor.value(arg)));
      } else if (arg == "--seed") {
        args.seed = cli::parse_u64(arg, cursor.value(arg));
      } else if (arg == "--workload") {
        args.workload_file = cursor.value(arg);
      } else if (arg == "--mutate") {
        args.mutate_file = cursor.value(arg);
      } else if (arg == "--refresh") {
        args.config.refresh.enabled = true;
      } else if (arg == "--refresh-budget") {
        args.config.refresh.budget_entries = cli::parse_size(arg, cursor.value(arg));
      } else if (arg == "--inject-faults") {
        args.fault_plan = gpusim::FaultPlan::parse_shared(cursor.value(arg));
      } else if (arg == "--max-attempts") {
        args.max_root_attempts = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--retries") {
        args.config.max_compute_retries = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--no-fallback") {
        args.config.enable_fallback = false;
      } else if (arg == "--fallback-roots") {
        args.config.fallback_sample_roots = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--trace-dir") {
        args.trace_dir = cursor.value(arg);
      } else if (arg == "--dump-scores") {
        args.dump_scores_path = cursor.value(arg);
      } else if (arg == "--role") {
        args.role = cursor.value(arg);
        if (args.role != "standalone" && args.role != "coordinator" &&
            args.role != "worker") {
          throw cli::UsageError("--role must be coordinator, worker, or standalone");
        }
      } else if (arg == "--listen") {
        args.listen_spec = cursor.value(arg);
      } else if (arg == "--connect") {
        args.connect_spec = cursor.value(arg);
      } else if (arg == "--expect-workers") {
        args.expect_workers = cli::parse_size(arg, cursor.value(arg));
      } else if (arg == "--replication") {
        args.replication = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--straggler-ms") {
        args.straggler_ms = cli::parse_u64(arg, cursor.value(arg));
      } else if (arg == "--die-after-shards") {
        args.die_after_shards = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--connect-attempts") {
        args.connect_attempts = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--chaos") {
        args.chaos = net::ChaosPlan::parse_shared(cursor.value(arg));
      } else if (arg == "--rejoin") {
        args.rejoin = cli::parse_u32(arg, cursor.value(arg));
      } else if (arg == "--heartbeat-ms") {
        args.heartbeat_ms = cli::parse_u64(arg, cursor.value(arg));
      } else if (arg == "--heartbeat-timeout") {
        args.heartbeat_timeout_ms = cli::parse_u64(arg, cursor.value(arg));
      } else if (arg == "--snapshot-dir") {
        args.snapshot_dir = cursor.value(arg);
      } else if (arg == "--restart-mid") {
        args.restart_mid = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else if (!arg.empty() && arg[0] == '-') {
        throw cli::UsageError("unknown option: " + arg);
      } else {
        args.graph_specs.push_back(arg);
      }
    }
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad argument: %s\n", e.what());
    return 2;
  }
  if (args.budget.allow_refinement && !args.budget.active()) {
    std::fprintf(stderr, "--refine needs an active budget: add --accuracy "
                         "and/or --budget-roots\n");
    usage(argv[0]);
  }
  if (args.role == "worker") {
    if (args.connect_spec.empty()) {
      std::fprintf(stderr, "--role worker requires --connect\n");
      usage(argv[0]);
    }
    if (!args.graph_specs.empty()) {
      std::fprintf(stderr, "--role worker takes no graph arguments "
                           "(the coordinator says what to load)\n");
      usage(argv[0]);
    }
  } else {
    if (args.role == "coordinator" && args.listen_spec.empty()) {
      std::fprintf(stderr, "--role coordinator requires --listen\n");
      usage(argv[0]);
    }
    if (args.restart_mid &&
        (args.role != "coordinator" || args.snapshot_dir.empty())) {
      std::fprintf(stderr, "--restart-mid requires --role coordinator and "
                           "--snapshot-dir (the successor restores from it)\n");
      usage(argv[0]);
    }
    if (args.graph_specs.empty()) usage(argv[0]);
  }

  trace::Tracer tracer;
  if (!args.trace_dir.empty()) args.config.tracer = &tracer;

  try {
    if (args.role == "worker") return run_worker(args, tracer);
    if (args.role == "coordinator") return run_coordinator(args, tracer);

    service::BcService svc(args.config);
    for (std::size_t i = 0; i < args.graph_specs.size(); ++i) {
      graph::CSRGraph g = cli::load_graph_spec(args.graph_specs[i]);
      const std::string id = "g" + std::to_string(i);
      std::printf("loaded %-4s %s\n", id.c_str(), g.summary().c_str());
      svc.load_graph(id, std::move(g));
    }

    const std::vector<service::Request> workload =
        args.workload_file.empty() ? synthetic_workload(args, args.graph_specs.size())
                                   : file_workload(args);
    std::printf("replaying %zu requests (%s workload) on %zu workers, "
                "queue=%zu policy=%s cache=%zu MiB\n",
                workload.size(), args.workload_file.empty() ? "synthetic" : "file",
                svc.worker_count(), args.config.admission.max_queue_depth,
                to_string(args.config.admission.policy),
                args.config.cache_bytes >> 20);

    // Parse the mutation script before replaying anything so a malformed
    // script fails fast instead of after half the workload.
    const std::vector<MutationStep> mutations =
        args.mutate_file.empty() ? std::vector<MutationStep>{}
                                 : parse_mutation_script(args.mutate_file);

    util::Timer wall;
    std::map<std::string, std::size_t> by_status;
    std::size_t degraded = 0;
    ApproxTally approx;
    const std::span<const service::Request> all(workload);
    if (mutations.empty()) {
      replay_slice(svc, all, by_status, degraded, approx);
    } else {
      const std::size_t mid = workload.size() / 2;
      replay_slice(svc, all.subspan(0, mid), by_status, degraded, approx);
      run_mutations(svc, mutations);
      replay_slice(svc, all.subspan(mid), by_status, degraded, approx);
    }
    if (args.budget.allow_refinement) {
      // Let background refinement reach every contract before the
      // metrics/trace snapshot, so refine rungs are visible in both.
      svc.drain_refinement();
    }
    const double wall_s = wall.elapsed_seconds();

    std::printf("\nreplay finished in %.3f s (%.1f submitted QPS)\n", wall_s,
                static_cast<double>(workload.size()) / wall_s);
    for (const auto& [status, count] : by_status) {
      std::printf("  %-18s %zu\n", status.c_str(), count);
    }
    if (degraded > 0) {
      std::printf("  %-18s %zu\n", "(degraded)", degraded);
    }
    approx.print();
    std::printf("\n%s", svc.metrics_report().c_str());

    if (!args.dump_scores_path.empty()) {
      dump_canonical_scores(args.dump_scores_path, args.graph_specs.size(), args,
                            [&](const service::Request& r) {
                              return svc.wait(svc.submit(r));
                            });
    }

    if (!args.trace_dir.empty()) {
      // Export only after the workers have quiesced: stop() joins them, so
      // no sink is being written while the exporter reads.
      svc.stop();
      std::filesystem::create_directories(args.trace_dir);
      const std::string json_path = args.trace_dir + "/serve.json";
      cli::write_trace_json(tracer, json_path);
      std::ofstream summary(args.trace_dir + "/serve-summary.txt");
      tracer.write_summary(summary);
      std::printf("\ntrace: %s -> %s\n", cli::trace_stats_line(tracer).c_str(),
                  json_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
