# Empty dependencies file for brain_network.
# This may be replaced when dependencies are built.
