#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "core/bc.hpp"

namespace hbc::net::wire {

namespace {

std::vector<std::uint8_t> finish_frame(MsgType type, std::uint64_t request_id,
                                       const std::vector<std::uint8_t>& payload,
                                       std::uint16_t version = kProtocolVersion) {
  std::vector<std::uint8_t> out;
  append_frame(out, type, request_id, payload, version);
  return out;
}

/// Shared decode epilogue: every field read must have had bytes, and every
/// payload byte must have been consumed.
DecodeStatus seal(const Reader& r) {
  if (!r.ok()) return DecodeStatus::Truncated;
  if (!r.at_end()) return DecodeStatus::TrailingBytes;
  return DecodeStatus::Ok;
}

bool check_type(const Frame& f, MsgType want) { return f.type == want; }

}  // namespace

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::Hello: return "hello";
    case MsgType::HelloAck: return "hello-ack";
    case MsgType::LoadGraph: return "load-graph";
    case MsgType::GraphLoaded: return "graph-loaded";
    case MsgType::SubmitShard: return "submit-shard";
    case MsgType::ShardResult: return "shard-result";
    case MsgType::Heartbeat: return "heartbeat";
    case MsgType::HeartbeatAck: return "heartbeat-ack";
    case MsgType::Mutate: return "mutate";
    case MsgType::MutateDone: return "mutate-done";
    case MsgType::Drain: return "drain";
    case MsgType::Goodbye: return "goodbye";
    case MsgType::Error: return "error";
    case MsgType::Quarantine: return "quarantine";
  }
  return "?";
}

const char* to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::Healthy: return "healthy";
    case HealthState::Quarantined: return "quarantined";
    case HealthState::Probation: return "probation";
  }
  return "?";
}

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::Ok: return "ok";
    case DecodeStatus::NeedMore: return "need-more";
    case DecodeStatus::BadMagic: return "bad-magic";
    case DecodeStatus::BadVersion: return "bad-version";
    case DecodeStatus::UnknownType: return "unknown-type";
    case DecodeStatus::Oversize: return "oversize";
    case DecodeStatus::Truncated: return "truncated";
    case DecodeStatus::TrailingBytes: return "trailing-bytes";
    case DecodeStatus::BadValue: return "bad-value";
  }
  return "?";
}

void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  std::uint64_t request_id, std::span<const std::uint8_t> payload,
                  std::uint16_t version) {
  Writer w(out);
  w.u32(kMagic);
  w.u16(version);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

DecodeStatus extract_frame(std::span<const std::uint8_t> in, Frame& frame,
                           std::size_t& consumed) {
  consumed = 0;
  if (in.size() < kHeaderSize) return DecodeStatus::NeedMore;
  Reader r(in.subspan(0, kHeaderSize));
  const std::uint32_t magic = r.u32();
  const std::uint16_t version = r.u16();
  const std::uint16_t type = r.u16();
  const std::uint64_t request_id = r.u64();
  const std::uint32_t payload_len = r.u32();
  // Validate the header before demanding payload bytes: a corrupt length
  // prefix must not make the caller wait for (or allocate) garbage.
  if (magic != kMagic) return DecodeStatus::BadMagic;
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return DecodeStatus::BadVersion;
  }
  if (type < static_cast<std::uint16_t>(MsgType::Hello) ||
      type > static_cast<std::uint16_t>(MsgType::Quarantine)) {
    return DecodeStatus::UnknownType;
  }
  if (payload_len > kMaxPayload) return DecodeStatus::Oversize;
  if (in.size() - kHeaderSize < payload_len) return DecodeStatus::NeedMore;
  frame.type = static_cast<MsgType>(type);
  frame.version = version;
  frame.request_id = request_id;
  frame.payload.assign(in.begin() + kHeaderSize, in.begin() + kHeaderSize + payload_len);
  consumed = kHeaderSize + payload_len;
  return DecodeStatus::Ok;
}

// --- Hello ---------------------------------------------------------------

std::vector<std::uint8_t> encode(const HelloMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u16(m.protocol);
  w.str(m.worker_name);
  w.u32(m.shard_slots);
  return finish_frame(MsgType::Hello, request_id, p);
}

DecodeStatus decode(const Frame& f, HelloMsg& out) {
  if (!check_type(f, MsgType::Hello)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.protocol = r.u16();
  out.worker_name = r.str();
  out.shard_slots = r.u32();
  return seal(r);
}

std::vector<std::uint8_t> encode(const HelloAckMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u32(m.worker_slot);
  w.str(m.coordinator_name);
  return finish_frame(MsgType::HelloAck, request_id, p);
}

DecodeStatus decode(const Frame& f, HelloAckMsg& out) {
  if (!check_type(f, MsgType::HelloAck)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.worker_slot = r.u32();
  out.coordinator_name = r.str();
  return seal(r);
}

// --- graph loading -------------------------------------------------------

std::vector<std::uint8_t> encode(const LoadGraphMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.str(m.spec);
  w.u64(m.fingerprint);
  w.updates(m.updates);
  w.u64(m.fingerprint_after);
  return finish_frame(MsgType::LoadGraph, request_id, p);
}

DecodeStatus decode(const Frame& f, LoadGraphMsg& out) {
  if (!check_type(f, MsgType::LoadGraph)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.spec = r.str();
  out.fingerprint = r.u64();
  out.updates = r.updates();
  out.fingerprint_after = r.u64();
  return seal(r);
}

std::vector<std::uint8_t> encode(const GraphLoadedMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.u8(m.ok);
  w.u64(m.fingerprint);
  w.str(m.error);
  return finish_frame(MsgType::GraphLoaded, request_id, p);
}

DecodeStatus decode(const Frame& f, GraphLoadedMsg& out) {
  if (!check_type(f, MsgType::GraphLoaded)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.ok = r.u8();
  out.fingerprint = r.u64();
  out.error = r.str();
  if (out.ok > 1) return DecodeStatus::BadValue;
  return seal(r);
}

// --- shards --------------------------------------------------------------

std::vector<std::uint8_t> encode(const SubmitShardMsg& m, std::uint64_t request_id,
                                 std::uint16_t version) {
  static_assert(sizeof(graph::VertexId) == sizeof(std::uint32_t),
                "roots travel as u32");
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.u64(m.fingerprint);
  w.u32(m.shard_index);
  w.u8(static_cast<std::uint8_t>(m.mode));
  w.u8(m.strategy);
  w.u8(m.halve_undirected);
  w.u8(m.normalize);
  w.u32(m.grid_blocks);
  w.u32(m.sample_roots);
  w.u64(m.seed);
  w.u32(m.cpu_threads);
  w.u32(m.max_root_attempts);
  w.u32(m.device_num_sms);
  w.u32(m.hybrid_alpha);
  w.u32(m.hybrid_beta);
  w.u32(m.sampling_n_samps);
  w.f64(m.sampling_gamma);
  w.u32(m.sampling_min_frontier);
  w.u32(m.deadline_ms);
  w.u32s(m.roots);
  if (version >= 2) {
    w.u8(m.has_budget);
    w.f64(m.accuracy_target);
    w.u32(m.budget_max_roots);
    w.u8(m.allow_refinement);
  }
  return finish_frame(MsgType::SubmitShard, request_id, p, version);
}

DecodeStatus decode(const Frame& f, SubmitShardMsg& out) {
  if (!check_type(f, MsgType::SubmitShard)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.fingerprint = r.u64();
  out.shard_index = r.u32();
  const std::uint8_t mode = r.u8();
  out.strategy = r.u8();
  out.halve_undirected = r.u8();
  out.normalize = r.u8();
  out.grid_blocks = r.u32();
  out.sample_roots = r.u32();
  out.seed = r.u64();
  out.cpu_threads = r.u32();
  out.max_root_attempts = r.u32();
  out.device_num_sms = r.u32();
  out.hybrid_alpha = r.u32();
  out.hybrid_beta = r.u32();
  out.sampling_n_samps = r.u32();
  out.sampling_gamma = r.f64();
  out.sampling_min_frontier = r.u32();
  out.deadline_ms = r.u32();
  out.roots = r.u32s();
  // v2 append: the budget block. REQUIRED in a v2 frame — a missing or
  // partial block is Truncated, never silently mistaken for a v1 exact
  // query — while a v1 frame must stop here (extra bytes seal as
  // TrailingBytes). Every v1 frame thus decodes with has_budget = 0.
  if (!r.ok()) return DecodeStatus::Truncated;
  if (f.version >= 2) {
    out.has_budget = r.u8();
    out.accuracy_target = r.f64();
    out.budget_max_roots = r.u32();
    out.allow_refinement = r.u8();
  }
  const DecodeStatus s = seal(r);
  if (s != DecodeStatus::Ok) return s;
  if (out.has_budget > 1 || out.allow_refinement > 1) return DecodeStatus::BadValue;
  if (!(out.accuracy_target >= 0.0 && out.accuracy_target <= 1.0)) {
    return DecodeStatus::BadValue;  // rejects NaN, infinities, negatives
  }
  if (mode > static_cast<std::uint8_t>(ShardMode::Whole)) return DecodeStatus::BadValue;
  out.mode = static_cast<ShardMode>(mode);
  if (out.strategy > static_cast<std::uint8_t>(core::Strategy::DirectionOptimized) ||
      out.halve_undirected > 1 || out.normalize > 1) {
    return DecodeStatus::BadValue;
  }
  return DecodeStatus::Ok;
}

std::vector<std::uint8_t> encode(const ShardResultMsg& m, std::uint64_t request_id,
                                 std::uint16_t version) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u32(m.shard_index);
  w.u8(m.ok);
  w.u8(m.degraded);
  w.str(m.error);
  w.u64(m.roots_processed);
  w.f64(m.compute_ms);
  w.f64s(m.scores);
  if (version >= 2) {
    w.u8(m.has_estimate);
    w.u64(m.est_roots_used);
    w.f64(m.est_stderr);
    w.u32(m.est_rung);
    w.u8(m.est_refining);
  }
  return finish_frame(MsgType::ShardResult, request_id, p, version);
}

DecodeStatus decode(const Frame& f, ShardResultMsg& out) {
  if (!check_type(f, MsgType::ShardResult)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.shard_index = r.u32();
  out.ok = r.u8();
  out.degraded = r.u8();
  out.error = r.str();
  out.roots_processed = r.u64();
  out.compute_ms = r.f64();
  out.scores = r.f64s();
  // v2 append: estimate block — required in a v2 frame, forbidden in a
  // v1 frame (see the SubmitShard decoder for the rule).
  if (!r.ok()) return DecodeStatus::Truncated;
  if (f.version >= 2) {
    out.has_estimate = r.u8();
    out.est_roots_used = r.u64();
    out.est_stderr = r.f64();
    out.est_rung = r.u32();
    out.est_refining = r.u8();
  }
  if (out.ok > 1 || out.degraded > 1) return DecodeStatus::BadValue;
  if (out.has_estimate > 1 || out.est_refining > 1) return DecodeStatus::BadValue;
  if (!(out.est_stderr >= 0.0)) return DecodeStatus::BadValue;  // rejects NaN
  return seal(r);
}

// --- liveness ------------------------------------------------------------

std::vector<std::uint8_t> encode(const HeartbeatMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u64(m.seq);
  w.u32(m.inflight);
  return finish_frame(MsgType::Heartbeat, request_id, p);
}

DecodeStatus decode(const Frame& f, HeartbeatMsg& out) {
  if (!check_type(f, MsgType::Heartbeat)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.seq = r.u64();
  out.inflight = r.u32();
  return seal(r);
}

std::vector<std::uint8_t> encode(const HeartbeatAckMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u64(m.seq);
  return finish_frame(MsgType::HeartbeatAck, request_id, p);
}

DecodeStatus decode(const Frame& f, HeartbeatAckMsg& out) {
  if (!check_type(f, MsgType::HeartbeatAck)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.seq = r.u64();
  return seal(r);
}

// --- mutation ------------------------------------------------------------

std::vector<std::uint8_t> encode(const MutateMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.updates(m.updates);
  w.u64(m.fingerprint_after);
  return finish_frame(MsgType::Mutate, request_id, p);
}

DecodeStatus decode(const Frame& f, MutateMsg& out) {
  if (!check_type(f, MsgType::Mutate)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.updates = r.updates();
  out.fingerprint_after = r.u64();
  const DecodeStatus s = seal(r);
  if (s != DecodeStatus::Ok) return s;
  for (const WireUpdate& e : out.updates) {
    if (e.insert > 1) return DecodeStatus::BadValue;
  }
  return DecodeStatus::Ok;
}

std::vector<std::uint8_t> encode(const MutateDoneMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.graph_id);
  w.u8(m.ok);
  w.u64(m.fingerprint);
  w.str(m.error);
  return finish_frame(MsgType::MutateDone, request_id, p);
}

DecodeStatus decode(const Frame& f, MutateDoneMsg& out) {
  if (!check_type(f, MsgType::MutateDone)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.graph_id = r.str();
  out.ok = r.u8();
  out.fingerprint = r.u64();
  out.error = r.str();
  if (out.ok > 1) return DecodeStatus::BadValue;
  return seal(r);
}

// --- control -------------------------------------------------------------

std::vector<std::uint8_t> encode(const DrainMsg&, std::uint64_t request_id) {
  return finish_frame(MsgType::Drain, request_id, {});
}

DecodeStatus decode(const Frame& f, DrainMsg&) {
  if (!check_type(f, MsgType::Drain)) return DecodeStatus::BadValue;
  return f.payload.empty() ? DecodeStatus::Ok : DecodeStatus::TrailingBytes;
}

std::vector<std::uint8_t> encode(const GoodbyeMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.str(m.reason);
  return finish_frame(MsgType::Goodbye, request_id, p);
}

DecodeStatus decode(const Frame& f, GoodbyeMsg& out) {
  if (!check_type(f, MsgType::Goodbye)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.reason = r.str();
  return seal(r);
}

std::vector<std::uint8_t> encode(const ErrorMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u32(m.code);
  w.str(m.message);
  return finish_frame(MsgType::Error, request_id, p);
}

DecodeStatus decode(const Frame& f, ErrorMsg& out) {
  if (!check_type(f, MsgType::Error)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  out.code = r.u32();
  out.message = r.str();
  return seal(r);
}

std::vector<std::uint8_t> encode(const QuarantineMsg& m, std::uint64_t request_id) {
  std::vector<std::uint8_t> p;
  Writer w(p);
  w.u8(static_cast<std::uint8_t>(m.state));
  w.str(m.reason);
  return finish_frame(MsgType::Quarantine, request_id, p);
}

DecodeStatus decode(const Frame& f, QuarantineMsg& out) {
  if (!check_type(f, MsgType::Quarantine)) return DecodeStatus::BadValue;
  Reader r(f.payload);
  const std::uint8_t state = r.u8();
  out.reason = r.str();
  const DecodeStatus s = seal(r);
  if (s != DecodeStatus::Ok) return s;
  if (state > static_cast<std::uint8_t>(HealthState::Probation)) {
    return DecodeStatus::BadValue;
  }
  out.state = static_cast<HealthState>(state);
  return DecodeStatus::Ok;
}

}  // namespace hbc::net::wire
