file(REMOVE_RECURSE
  "libhbc_dist.a"
)
