#include "cli_common.hpp"

#include <fstream>
#include <sstream>

namespace hbc::cli {

bool is_generator_spec(const std::string& spec) {
  return spec.rfind("gen:", 0) == 0;
}

graph::CSRGraph load_graph_spec(const std::string& spec) {
  if (!is_generator_spec(spec)) return graph::io::read_auto(spec);
  // gen:<family>:<scale>[:<seed>]
  const std::size_t c1 = spec.find(':', 4);
  if (c1 == std::string::npos) {
    throw UsageError("generator spec needs gen:<family>:<scale>[:<seed>]: " + spec);
  }
  const std::string family = spec.substr(4, c1 - 4);
  const std::size_t c2 = spec.find(':', c1 + 1);
  const std::uint32_t scale = parse_u32(spec, spec.substr(c1 + 1, c2 - c1 - 1));
  const std::uint64_t seed =
      c2 == std::string::npos ? 1 : parse_u64(spec, spec.substr(c2 + 1));
  return graph::gen::family_by_name(family).make(scale, seed);
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing characters");
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw UsageError(flag + ": expected an unsigned integer, got '" + text + "'");
  }
}

std::uint32_t parse_u32(const std::string& flag, const std::string& text) {
  const std::uint64_t v = parse_u64(flag, text);
  if (v > 0xffffffffull) {
    throw UsageError(flag + ": value out of range: '" + text + "'");
  }
  return static_cast<std::uint32_t>(v);
}

std::size_t parse_size(const std::string& flag, const std::string& text) {
  return static_cast<std::size_t>(parse_u64(flag, text));
}

double parse_double(const std::string& flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw UsageError(flag + ": expected a number, got '" + text + "'");
  }
}

void write_trace_json(const trace::Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file " + path);
  tracer.write_chrome_json(out);
  if (!out) throw std::runtime_error("error writing trace file " + path);
}

std::string trace_stats_line(const trace::Tracer& tracer) {
  std::ostringstream s;
  s << tracer.event_count() << " events (" << tracer.dropped() << " dropped)";
  return s.str();
}

}  // namespace hbc::cli
