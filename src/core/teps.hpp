#pragma once

// TEPS accounting (paper Equation 4): TEPS_BC = m * n / t for the exact
// computation. When only k of n roots were processed, the paper's
// observation that per-root time is roughly uniform (§IV.C) makes
// m * k / t the consistent estimator of the same quantity.

#include <cstdint>

#include "graph/csr.hpp"

namespace hbc::core {

/// TEPS from processed roots: m * roots / seconds (== Equation 4 when
/// roots == n). Returns 0 when seconds or roots is 0.
double teps_bc(const graph::CSRGraph& g, std::uint64_t roots_processed, double seconds);

/// §V.D's adjustment for graphs with isolated vertices (kron): scale by
/// the fraction of non-isolated vertices, since the nominal formula
/// pretends every vertex contributes a full traversal.
double teps_bc_adjusted(const graph::CSRGraph& g, std::uint64_t roots_processed,
                        double seconds);

double as_mteps(double teps) noexcept;
double as_gteps(double teps) noexcept;

}  // namespace hbc::core
