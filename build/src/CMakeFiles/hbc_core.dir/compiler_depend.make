# Empty compiler generated dependencies file for hbc_core.
# This may be replaced when dependencies are built.
