file(REMOVE_RECURSE
  "CMakeFiles/test_consistency_sweep.dir/test_consistency_sweep.cpp.o"
  "CMakeFiles/test_consistency_sweep.dir/test_consistency_sweep.cpp.o.d"
  "test_consistency_sweep"
  "test_consistency_sweep.pdb"
  "test_consistency_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consistency_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
