// Service throughput: QPS vs worker count x cache-hit ratio, plus the
// resilience axes (docs/resilience.md).
//
// Replays a synthetic query workload (sampling-strategy approximate BC
// over a small-world graph) through hbc::service::BcService at 0% and
// ~90% request-level cache-hit ratios for 1, 4, and hardware worker
// threads. The cold-cache column measures how well the worker pool scales
// compute throughput (on a multi-core host 1 -> 4 workers should exceed
// 2x); the warm column shows the cache collapsing latency to lookups, at
// which point QPS is bounded by the submit path, not by workers.
//
// Two resilience measurements follow:
//   * a fault-rate axis — the same cold-cache workload with a transient
//     fault plan injecting faults into 0%, 1%, and 10% of roots, reporting
//     QPS, p99 latency, and the fallback ratio (ladder descents per
//     computed request; transient faults recover in-driver, so it should
//     stay 0 while QPS degrades only by the retried roots' extra work);
//   * a cancellation-overhead check — the driver polls its CancelToken at
//     every root boundary even when no deadline is set; best-of-N kernel
//     runs with an inert vs. an armed (never firing) token must stay
//     within 2%, i.e. fault-free runs don't pay for cancellability.
//
// Plus the fleet-level chaos axes (docs/resilience.md): distributed QPS
// under seeded frame-drop chaos at 0% / 1% / 10% (recovery cost, with
// bitwise-identical answers), and an inert-chaos overhead gate — an armed
// plan that never targets a frame must stay within 2% of an unarmed run.
//
// And a background-refinement axis (docs/serving.md): exact-query QPS
// with the progressive refiner idle vs actively saturating a backlog of
// accuracy contracts. Refinement only runs while the admission queue is
// drained, so the cost to foreground work must stay under 5%.
//
// Environment knobs (bench/common.hpp conventions):
//   HBC_BENCH_SCALE     log2 vertices of the benchmark graph (default 11)
//   HBC_BENCH_ROOTS     sample_roots per query          (default 16)
//   HBC_BENCH_REQUESTS  requests per measurement        (default 96)
//   HBC_BENCH_JSON      also write machine-readable records to this path

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/bc.hpp"
#include "gpusim/faults.hpp"
#include "graph/generators.hpp"
#include "net/chaos.hpp"
#include "net/coordinator.hpp"
#include "net/worker.hpp"
#include "service/service.hpp"
#include "trace/trace.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace {

using namespace hbc;

struct Measurement {
  double qps = 0.0;
  double hit_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double fallback_ratio = 0.0;  // ladder descents per computed request
  std::uint64_t faults = 0;     // device faults injected (incl. recovered)
  std::uint64_t reruns = 0;     // service whole-run compute retries
};

std::vector<std::string> g_json_records;

void record_measurement(const char* axis, std::size_t workers, double hit_ratio,
                        double fault_rate, const Measurement& m) {
  std::ostringstream s;
  s << "{\"bench\":\"service_throughput\",\"axis\":\"" << axis
    << "\",\"workers\":" << workers << ",\"target_hit_ratio\":" << hit_ratio
    << ",\"fault_rate\":" << fault_rate << ",\"qps\":" << m.qps
    << ",\"hit_rate\":" << m.hit_rate << ",\"p50_ms\":" << m.p50_ms
    << ",\"p99_ms\":" << m.p99_ms << ",\"fallback_ratio\":" << m.fallback_ratio
    << ",\"faults\":" << m.faults << ",\"compute_retries\":" << m.reruns << "}";
  g_json_records.push_back(s.str());
}

void emit_json() {
  const char* path = std::getenv("HBC_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < g_json_records.size(); ++i) {
    out << "  " << g_json_records[i] << (i + 1 < g_json_records.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::ofstream f(path);
  f << out.str();
  std::printf("wrote %zu records to %s\n", g_json_records.size(), path);
}

Measurement run_workload(const graph::CSRGraph& g, std::size_t workers,
                         double hit_ratio, std::uint32_t sample_roots,
                         std::size_t requests, double fault_rate = 0.0) {
  service::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.admission.max_queue_depth = requests;  // measure workers, not admission
  service::BcService svc(cfg);
  svc.load_graph("bench", std::make_shared<const graph::CSRGraph>(g));

  std::shared_ptr<const gpusim::FaultPlan> plan;
  if (fault_rate > 0.0) {
    gpusim::FaultPlan p(5);
    p.add({.kind = gpusim::FaultKind::KernelLaunch, .rate = fault_rate});
    plan = std::make_shared<const gpusim::FaultPlan>(std::move(p));
  }

  // hit_ratio ~0.9: 90% of requests cycle through a small warm set that
  // was computed once up front; the rest (and everything at ratio 0) get
  // unique seeds so each is a fresh computation.
  constexpr std::size_t kWarmSet = 4;
  auto make_request = [&](std::uint64_t seed) {
    service::Request r;
    r.graph_id = "bench";
    r.options.strategy = core::Strategy::Sampling;
    r.options.sample_roots = sample_roots;
    r.options.seed = seed;
    r.options.resilience.fault_plan = plan;
    return r;
  };
  if (hit_ratio > 0.0) {
    for (std::size_t i = 0; i < kWarmSet; ++i) {
      (void)svc.query(make_request(i));  // pre-warm, excluded from timing
    }
  }

  util::Timer wall;
  std::vector<service::Ticket> tickets;
  tickets.reserve(requests);
  std::uint64_t unique_seed = 1u << 20;
  for (std::size_t i = 0; i < requests; ++i) {
    const bool warm = hit_ratio > 0.0 &&
                      (static_cast<double>(i % 10) < hit_ratio * 10.0);
    tickets.push_back(svc.submit(make_request(warm ? i % kWarmSet : unique_seed++)));
  }
  for (const auto& t : tickets) (void)svc.wait(t);
  const double seconds = wall.elapsed_seconds();

  const service::MetricsSnapshot m = svc.metrics();
  Measurement out;
  out.qps = seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  out.hit_rate = m.cache_hit_rate();
  out.p50_ms = m.latency_p50_ms;
  out.p99_ms = m.latency_p99_ms;
  out.fallback_ratio = m.computed > 0
                           ? static_cast<double>(m.fallbacks) /
                                 static_cast<double>(m.computed)
                           : 0.0;
  out.faults = m.device_faults;
  out.reruns = m.compute_retries;
  return out;
}

/// Background-refinement axis: the exact cold-cache workload, with the
/// progressive refiner either idle or chewing through a set of saturating
/// accuracy contracts queued just before the timer. Each contract serves
/// rung 0 synchronously (untimed) and leaves every remaining stratum to
/// the background queue, so the refiner has work for the whole window.
Measurement run_workload_vs_refinement(const graph::CSRGraph& g,
                                       std::size_t workers,
                                       std::uint32_t sample_roots,
                                       std::size_t requests, bool refine,
                                       std::uint64_t* strata_folded = nullptr) {
  service::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.admission.max_queue_depth = requests;
  service::BcService svc(cfg);
  svc.load_graph("bench", std::make_shared<const graph::CSRGraph>(g));

  if (refine) {
    for (std::uint64_t c = 0; c < 4; ++c) {
      service::Request b;
      b.graph_id = "bench";
      b.options.strategy = core::Strategy::WorkEfficient;
      b.options.seed = 100 + c;
      b.budget.accuracy_target = 1e-9;  // unreachable before saturation
      b.budget.allow_refinement = true;
      (void)svc.query(b);
    }
  }

  auto make_request = [&](std::uint64_t seed) {
    service::Request r;
    r.graph_id = "bench";
    r.options.strategy = core::Strategy::Sampling;
    r.options.sample_roots = sample_roots;
    r.options.seed = seed;
    return r;
  };
  util::Timer wall;
  std::vector<service::Ticket> tickets;
  tickets.reserve(requests);
  std::uint64_t unique_seed = 1u << 21;
  for (std::size_t i = 0; i < requests; ++i) {
    tickets.push_back(svc.submit(make_request(unique_seed++)));
  }
  for (const auto& t : tickets) (void)svc.wait(t);
  const double seconds = wall.elapsed_seconds();

  const service::MetricsSnapshot m = svc.metrics();
  if (strata_folded != nullptr) *strata_folded = m.approx_strata;
  Measurement out;
  out.qps = seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  out.p50_ms = m.latency_p50_ms;
  out.p99_ms = m.latency_p99_ms;
  return out;
}

/// Distributed axis (docs/distributed.md): QPS through a net::Coordinator
/// fronting `fleet` net::Worker threads over a Unix socket. Queries are
/// block-sharded work-efficient runs with sampled roots and unique seeds
/// (cold cache), issued sequentially — the measured parallelism is the
/// intra-query shard fan-out across the fleet, the distributed analogue of
/// the paper's multi-GPU root distribution. fleet == 0 measures the same
/// sequential workload on an in-process BcService as the baseline.
// `healing` arms the recovery knobs (straggler re-dispatch, fast worker
// heartbeats/rejoin). It is separate from `chaos` so the inert-overhead
// gate can compare armed vs unarmed plans over an otherwise *identical*
// fleet — with the knobs tied to the plan, the armed arm would also pay
// for 50ms heartbeat chatter and the gate would measure that, not chaos.
Measurement run_distributed(const graph::CSRGraph& g, std::size_t fleet,
                            std::uint32_t sample_roots, std::size_t requests,
                            std::shared_ptr<const net::ChaosPlan> chaos = nullptr,
                            bool healing = false) {
  auto shared = std::make_shared<const graph::CSRGraph>(g);
  auto make_request = [&](std::uint64_t seed) {
    service::Request r;
    r.graph_id = "bench";
    r.options.strategy = core::Strategy::WorkEfficient;
    r.options.sample_roots = sample_roots;
    r.options.seed = seed;
    return r;
  };

  std::vector<double> lat_ms;
  lat_ms.reserve(requests);
  double seconds = 0.0;

  if (fleet == 0) {
    service::ServiceConfig cfg;
    cfg.workers = 2;  // same service pool each net::Worker gets below
    service::BcService svc(cfg);
    svc.load_graph("bench", shared);
    util::Timer wall;
    for (std::size_t i = 0; i < requests; ++i) {
      const service::Response r = svc.query(make_request(1000 + i));
      lat_ms.push_back(r.total_ms);
    }
    seconds = wall.elapsed_seconds();
  } else {
    const std::string sock = "/tmp/hbc-bench-" + std::to_string(::getpid()) +
                             "-" + std::to_string(fleet) + ".sock";
    std::filesystem::remove(sock);
    net::CoordinatorConfig cc;
    cc.listen = net::Endpoint::parse("unix:" + sock);
    // Chaos is armed coordinator-side (stream ids are accept slots, which
    // advance on rejoin, so an unlucky fate cannot recur forever); the
    // straggler timeout is what turns dropped shard frames into
    // re-dispatches instead of a hung query.
    cc.chaos = chaos;
    if (healing) cc.straggler_timeout = std::chrono::milliseconds(100);
    net::Coordinator coord(cc);

    std::vector<std::unique_ptr<net::Worker>> workers;
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < fleet; ++i) {
      net::WorkerConfig wc;
      wc.connect = cc.listen;
      wc.name = "bench-worker-" + std::to_string(i);
      wc.service.workers = 2;
      wc.graph_loader = [shared](const std::string&) { return *shared; };
      if (healing) {
        wc.rejoin_attempts = 100;
        wc.heartbeat_interval = std::chrono::milliseconds(50);
        wc.connect_backoff = std::chrono::milliseconds(5);
        wc.max_backoff = std::chrono::milliseconds(100);
      }
      workers.push_back(std::make_unique<net::Worker>(wc));
      threads.emplace_back([w = workers.back().get()] { w->run(); });
    }
    coord.wait_for_workers(fleet, std::chrono::seconds(20));
    coord.load_graph("bench", shared, "bench");

    util::Timer wall;
    for (std::size_t i = 0; i < requests; ++i) {
      const service::Response r = coord.query(make_request(1000 + i));
      lat_ms.push_back(r.total_ms);
    }
    seconds = wall.elapsed_seconds();

    coord.drain();
    for (auto& w : workers) w->request_stop();
    for (auto& t : threads) t.join();
    std::filesystem::remove(sock);
  }

  std::sort(lat_ms.begin(), lat_ms.end());
  Measurement out;
  out.qps = seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  if (!lat_ms.empty()) {
    out.p50_ms = lat_ms[lat_ms.size() / 2];
    out.p99_ms = lat_ms[std::min(lat_ms.size() - 1, lat_ms.size() * 99 / 100)];
  }
  return out;
}

/// Best-of-N wall seconds for one sampling run over `g` with the given
/// cancel token. Min-of-N is the standard noise-robust point estimate for
/// "how fast can this go" comparisons.
double best_run_seconds(const graph::CSRGraph& g, std::uint32_t sample_roots,
                        const util::CancelToken& token, int reps,
                        trace::Tracer* tracer = nullptr) {
  core::Options o;
  o.strategy = core::Strategy::Sampling;
  o.sample_roots = sample_roots;
  o.resilience.cancel = token;
  o.trace.tracer = tracer;
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    util::Timer t;
    (void)core::compute(g, o);
    best = std::min(best, t.elapsed_seconds());
  }
  return best;
}

}  // namespace

int main() {
  const std::uint32_t scale = bench::env_u32("HBC_BENCH_SCALE", 11);
  const std::uint32_t roots = bench::env_u32("HBC_BENCH_ROOTS", 16);
  const std::size_t requests = bench::env_u32("HBC_BENCH_REQUESTS", 96);

  const auto g = graph::gen::small_world({.num_vertices = 1u << scale, .k = 4, .seed = 3});

  bench::print_header(
      "service throughput: QPS vs workers x cache-hit ratio",
      "graph: " + g.summary() + "\nsampling strategy, " + std::to_string(roots) +
          " roots/query, " + std::to_string(requests) + " requests per cell");

  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> worker_counts{1, 4};
  if (hw != 1 && hw != 4) worker_counts.push_back(hw);

  std::printf("%8s | %28s | %28s\n", "", "cold cache (0% target)", "warm cache (~90% target)");
  std::printf("%8s | %10s %8s %8s | %10s %8s %8s\n", "workers", "QPS", "hit%",
              "p99 ms", "QPS", "hit%", "p99 ms");
  bench::print_rule();

  double qps_1 = 0.0, qps_4 = 0.0;
  for (const std::size_t w : worker_counts) {
    const Measurement cold = run_workload(g, w, 0.0, roots, requests);
    const Measurement warm = run_workload(g, w, 0.9, roots, requests);
    record_measurement("workers", w, 0.0, 0.0, cold);
    record_measurement("workers", w, 0.9, 0.0, warm);
    if (w == 1) qps_1 = cold.qps;
    if (w == 4) qps_4 = cold.qps;
    std::printf("%8zu | %10.1f %8.1f %8.2f | %10.1f %8.1f %8.2f\n", w, cold.qps,
                100.0 * cold.hit_rate, cold.p99_ms, warm.qps, 100.0 * warm.hit_rate,
                warm.p99_ms);
  }
  bench::print_rule();
  if (qps_1 > 0.0 && qps_4 > 0.0) {
    std::printf("cold-cache speedup 1 -> 4 workers: %.2fx (hardware reports %zu cores;"
                " expect >2x when >=4 are available)\n",
                qps_4 / qps_1, hw);
  }

  // --- fault-rate axis ----------------------------------------------------
  // Transient launch faults on 0% / 1% / 10% of roots (docs/resilience.md).
  // Every fault recovers in-driver, so the fallback ratio stays 0 and QPS
  // pays only for the retried launches.
  const std::size_t fault_workers = std::min<std::size_t>(4, hw);
  std::printf("\nfault-rate axis (cold cache, %zu workers, transient launch faults)\n",
              fault_workers);
  std::printf("%10s | %10s %8s %10s %8s %8s\n", "fault rate", "QPS", "p99 ms",
              "fallback%", "faults", "reruns");
  bench::print_rule();
  for (const double rate : {0.0, 0.01, 0.10}) {
    const Measurement m = run_workload(g, fault_workers, 0.0, roots, requests, rate);
    record_measurement("fault_rate", fault_workers, 0.0, rate, m);
    std::printf("%9.0f%% | %10.1f %8.2f %9.1f%% %8llu %8llu\n", 100.0 * rate, m.qps,
                m.p99_ms, 100.0 * m.fallback_ratio,
                static_cast<unsigned long long>(m.faults),
                static_cast<unsigned long long>(m.reruns));
  }
  bench::print_rule();

  // --- background-refinement axis -----------------------------------------
  // The accuracy-contract quality dial (docs/serving.md): a saturated
  // refinement backlog must cost foreground exact queries <5% QPS. Best
  // of N per arm — max QPS is the standard noise-robust point estimate.
  constexpr int kRefineReps = 5;
  double idle_qps = 0.0, busy_qps = 0.0;
  std::uint64_t bg_strata = 0;
  for (int i = 0; i < kRefineReps; ++i) {
    const Measurement idle =
        run_workload_vs_refinement(g, fault_workers, roots, requests, false);
    std::uint64_t strata = 0;
    const Measurement busy = run_workload_vs_refinement(g, fault_workers, roots,
                                                        requests, true, &strata);
    idle_qps = std::max(idle_qps, idle.qps);
    busy_qps = std::max(busy_qps, busy.qps);
    bg_strata = std::max(bg_strata, strata);
  }
  const double refine_cost =
      idle_qps > 0.0 ? (idle_qps - busy_qps) / idle_qps : 0.0;
  std::printf("\nbackground-refinement axis (best of %d, %zu workers): "
              "refiner idle %.1f QPS vs refining %.1f QPS (%llu strata folded) "
              "-> %+.2f%%\n",
              kRefineReps, fault_workers, idle_qps, busy_qps,
              static_cast<unsigned long long>(bg_strata), 100.0 * refine_cost);
  const bool refine_ok = refine_cost <= 0.05;
  std::printf("background refinement within 5%% of exact QPS: %s\n",
              refine_ok ? "PASS" : "FAIL");
  {
    std::ostringstream s;
    s << "{\"bench\":\"service_throughput\",\"axis\":\"refinement\",\"workers\":"
      << fault_workers << ",\"idle_qps\":" << idle_qps << ",\"refining_qps\":"
      << busy_qps << ",\"strata_folded\":" << bg_strata << ",\"qps_cost\":"
      << refine_cost << "}";
    g_json_records.push_back(s.str());
  }

  // --- distributed axis ---------------------------------------------------
  // Coordinator-mode QPS: block-sharded work-efficient queries fanned out
  // across an in-process worker fleet over a Unix socket. Sequential
  // submission (the coordinator runs one query at a time), so scaling here
  // is intra-query: one query's B blocks spread across fleet x 2 threads.
  const std::size_t dist_requests = std::max<std::size_t>(8, requests / 8);
  std::printf("\ndistributed axis (coordinator + fleet over unix socket, "
              "%zu work-efficient queries, %u sampled roots)\n",
              dist_requests, roots);
  std::printf("%12s | %10s %8s %8s\n", "fleet", "QPS", "p50 ms", "p99 ms");
  bench::print_rule();
  for (const std::size_t fleet : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    const Measurement m = run_distributed(g, fleet, roots, dist_requests);
    record_measurement("distributed", fleet, 0.0, 0.0, m);
    if (fleet == 0) {
      std::printf("%12s | %10.1f %8.2f %8.2f\n", "standalone", m.qps, m.p50_ms,
                  m.p99_ms);
    } else {
      std::printf("%8zu x2t | %10.1f %8.2f %8.2f\n", fleet, m.qps, m.p50_ms,
                  m.p99_ms);
    }
  }
  bench::print_rule();

  // --- chaos axis ---------------------------------------------------------
  // The distributed workload under seeded frame-drop chaos (net::ChaosPlan,
  // docs/resilience.md): at 1% and 10% drop rates the fleet pays for
  // straggler re-dispatches and worker rejoins, but every query still
  // returns the bitwise-standalone answer — this axis prices the recovery
  // machinery, it does not relax correctness.
  const std::size_t chaos_fleet = 2;
  std::printf("\nchaos axis (fleet of %zu, coordinator-side frame drops, "
              "%zu queries)\n",
              chaos_fleet, dist_requests);
  std::printf("%10s | %10s %8s %8s\n", "drop rate", "QPS", "p50 ms", "p99 ms");
  bench::print_rule();
  for (const double rate : {0.0, 0.01, 0.10}) {
    std::shared_ptr<const net::ChaosPlan> plan;
    if (rate > 0.0) {
      char spec[64];
      std::snprintf(spec, sizeof(spec), "seed=29;drop,rate=%g", rate);
      plan = net::ChaosPlan::parse_shared(spec);
    }
    const Measurement m =
        run_distributed(g, chaos_fleet, roots, dist_requests, plan, /*healing=*/true);
    record_measurement("chaos", chaos_fleet, 0.0, rate, m);
    std::printf("%9.0f%% | %10.1f %8.2f %8.2f\n", 100.0 * rate, m.qps, m.p50_ms,
                m.p99_ms);
  }
  bench::print_rule();

  // --- inert-chaos overhead -----------------------------------------------
  // Every Conn::send consults the chaos injector; with a plan armed that
  // never targets a frame, that is one hash per frame on top of the null
  // test an unarmed connection pays. Best-of-N distributed runs, armed vs
  // unarmed, must stay within 2% — same standard as the cancel token and
  // disabled tracing: you don't pay for chaos you aren't injecting.
  constexpr int kChaosReps = 5;
  const auto never_fires =
      net::ChaosPlan::parse_shared("seed=1;drop,frames=4000000000");
  double chaos_base_s = 1e300, chaos_armed_s = 1e300;
  for (int i = 0; i < kChaosReps; ++i) {
    const Measurement base = run_distributed(g, chaos_fleet, roots, dist_requests);
    const Measurement armed =
        run_distributed(g, chaos_fleet, roots, dist_requests, never_fires);
    if (base.qps > 0.0)
      chaos_base_s = std::min(chaos_base_s, static_cast<double>(dist_requests) / base.qps);
    if (armed.qps > 0.0)
      chaos_armed_s = std::min(chaos_armed_s, static_cast<double>(dist_requests) / armed.qps);
  }
  const double chaos_overhead =
      chaos_base_s > 0.0 ? (chaos_armed_s - chaos_base_s) / chaos_base_s : 0.0;
  std::printf("\ninert-chaos overhead (best of %d, fleet of %zu): "
              "unarmed %.4fs vs armed-never-firing %.4fs -> %+.2f%%\n",
              kChaosReps, chaos_fleet, chaos_base_s, chaos_armed_s,
              100.0 * chaos_overhead);
  const bool chaos_ok = chaos_overhead <= 0.02;
  std::printf("inert-chaos overhead within 2%%: %s\n", chaos_ok ? "PASS" : "FAIL");

  // --- cancellation-check overhead ----------------------------------------
  // The driver polls RunConfig::cancel once per root even with no deadline
  // set. Compare best-of-N runs with an inert token (default) against an
  // armed token whose deadline never fires: the armed run adds one atomic
  // load + clock read per root, which must stay within 2%.
  constexpr int kReps = 5;
  const util::CancelToken inert;  // default: one pointer test per check
  util::CancelSource armed =
      util::CancelSource::with_timeout(std::chrono::hours(24));
  const double base_s = best_run_seconds(g, roots, inert, kReps);
  const double armed_s = best_run_seconds(g, roots, armed.token(), kReps);
  const double overhead = base_s > 0.0 ? (armed_s - base_s) / base_s : 0.0;
  std::printf("\ncancellation-check overhead (best of %d, %u roots): "
              "inert %.4fs vs armed %.4fs -> %+.2f%%\n",
              kReps, roots, base_s, armed_s, 100.0 * overhead);
  const bool overhead_ok = overhead <= 0.02;
  std::printf("cancellation overhead within 2%%: %s\n", overhead_ok ? "PASS" : "FAIL");

  // --- disabled-tracing overhead ------------------------------------------
  // Every instrumentation point holds a null Sink pointer when no tracer is
  // attached, so tracing off must be free to the same standard as the inert
  // cancel token. Compare no tracer (baseline) against a tracer with every
  // category masked off (one load+AND per point): within 2%. An enabled
  // capture is also timed and written out so bench runs double as trace
  // producers (HBC_BENCH_TRACE overrides the output path).
  trace::Tracer masked(trace::TracerConfig{.categories = trace::kNone});
  const double masked_s = best_run_seconds(g, roots, inert, kReps, &masked);
  const double trace_overhead =
      base_s > 0.0 ? (masked_s - base_s) / base_s : 0.0;
  std::printf("\ndisabled-tracing overhead (best of %d, %u roots): "
              "off %.4fs vs masked %.4fs -> %+.2f%%\n",
              kReps, roots, base_s, masked_s, 100.0 * trace_overhead);
  const bool trace_ok = trace_overhead <= 0.02;
  std::printf("disabled-tracing overhead within 2%%: %s\n", trace_ok ? "PASS" : "FAIL");

  trace::Tracer enabled;
  const double enabled_s = best_run_seconds(g, roots, inert, 1, &enabled);
  const char* trace_path = std::getenv("HBC_BENCH_TRACE");
  const std::string trace_out =
      trace_path != nullptr && *trace_path != '\0' ? trace_path : "service_bench_trace.json";
  std::ofstream tf(trace_out);
  enabled.write_chrome_json(tf);
  std::printf("enabled capture: %.4fs, %zu events -> %s\n", enabled_s,
              enabled.event_count(), trace_out.c_str());

  emit_json();
  return overhead_ok && trace_ok && chaos_ok && refine_ok ? 0 : 1;
}
