#pragma once

// hbc::service — an in-process concurrent BC query service.
//
// The serving pipeline (docs/serving.md has the full walkthrough):
//
//   submit ──► cache lookup ──► in-flight coalescing ──► admission ──►
//        bounded queue ──► worker pool (util::ThreadPool) ──►
//        core::compute ──► cache insert ──► future completion ──► metrics
//
// A request names a registered graph plus a full core::Options, so every
// strategy in the library (CPU engines and the paper's GPU-model kernels)
// is servable. Identical concurrent requests — same graph fingerprint and
// canonical options signature — share one computation: the first becomes
// the in-flight leader, later twins attach to its shared future and the
// queue never sees them. Completed results land in a byte-budgeted LRU
// cache; a full queue blocks, rejects, or sheds load per AdmissionPolicy.
//
// Usage:
//
//   hbc::service::BcService svc({.workers = 4});
//   svc.load_graph("web", hbc::graph::gen::web_crawl({.num_vertices = 1 << 16}));
//   auto t = svc.submit({.graph_id = "web", .options = {...}, .top_k = 10});
//   hbc::service::Response r = svc.wait(t);
//   for (auto [v, score] : r.top) { ... }

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/bc.hpp"
#include "dyn/incremental_bc.hpp"
#include "graph/csr.hpp"
#include "service/admission.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/progressive.hpp"
#include "trace/trace.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace hbc::service {

enum class QueryStatus {
  Ok,
  QueueFull,         // Reject policy and the queue was full
  DeadlineExceeded,  // deadline passed — queued, blocked, or MID-COMPUTE
                     // (the worker cancels the run at a root boundary)
  GraphNotFound,     // graph_id not registered (or already evicted)
  ServiceStopped,    // submitted during/after stop(), or cancelled by it
  BadRequest,        // invalid options (bad roots etc.); error has details
  Failed,            // compute threw; Response::error has the message
};

const char* to_string(QueryStatus status) noexcept;

struct Request {
  std::string graph_id;
  core::Options options;
  /// The accuracy/latency contract (docs/serving.md § Accuracy
  /// contracts). Inactive by default: requests behave exactly as before,
  /// with byte-identical options signatures. An active budget routes the
  /// request onto the progressive-approximation path — options.roots
  /// must then be empty (BadRequest otherwise) and options.sample_roots
  /// is ignored in favor of the controller's stratified schedule.
  QueryBudget budget;
  /// When > 0, wait() fills Response::top with the top-k (vertex, score)
  /// pairs. Per-request: coalesced twins may ask for different k.
  std::size_t top_k = 0;
  /// DEPRECATED shim: prefer budget.deadline, which supersedes this when
  /// set. Total budget from submit to response; 0 = none. Expiry while
  /// queued (or blocked on admission) yields DeadlineExceeded
  /// immediately; expiry mid-compute cancels the run cooperatively at
  /// the next root boundary and yields DeadlineExceeded then (see
  /// docs/resilience.md).
  std::chrono::milliseconds timeout{0};
};

struct Response {
  QueryStatus status = QueryStatus::Ok;
  std::string error;
  /// Shared with the cache and with every coalesced twin; null unless Ok.
  std::shared_ptr<const core::BCResult> result;
  /// Top-k view (only filled by wait() when the ticket asked for it).
  std::vector<std::pair<graph::VertexId, double>> top;
  bool from_cache = false;
  bool coalesced = false;
  bool shed = false;        // served from a shed (downgraded) computation
  /// The answer is not what was asked for: the requested strategy failed
  /// persistently and the degradation ladder served a CPU or sampling
  /// substitute (result->strategy says which), or — with the ladder
  /// disabled — a partial result with failed roots missing. Degraded
  /// results are NEVER cached; a later identical request recomputes.
  bool degraded = false;
  /// Present on every budgeted (progressive) response: what the sampled
  /// estimate actually delivered. nullopt on classic exact responses.
  std::optional<Estimate> estimate;
  double compute_ms = 0.0;  // 0 for cache hits
  double total_ms = 0.0;    // submit -> response
  bool ok() const noexcept { return status == QueryStatus::Ok; }
};

/// Handle returned by submit(). Cheap to copy; wait() may be called from
/// any thread, multiple times.
struct Ticket {
  std::shared_future<Response> future;
  std::uint64_t id = 0;
  std::size_t top_k = 0;
  bool cache_hit = false;   // answered synchronously from the cache
  bool coalesced = false;   // attached to an identical in-flight request
  bool shed = false;        // admitted with a downgraded configuration
  bool valid() const noexcept { return future.valid(); }
};

struct ServiceConfig {
  /// Worker threads draining the queue; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Result-cache budget; 0 disables caching (coalescing still applies).
  std::size_t cache_bytes = 256ull << 20;
  AdmissionConfig admission;
  /// Host-thread budget handed to each GPU-model kernel run (overrides the
  /// request's Options::cpu_threads). Keeps `workers` concurrent kernel
  /// runs from oversubscribing the machine now that kernels::BlockDriver
  /// threads GPU-model strategies: the default of 1 keeps all parallelism
  /// at the request level. 0 leaves the request's own cpu_threads alone.
  /// Responses are unaffected either way — GPU-model kernels are bitwise-
  /// deterministic in the thread count (and the cache key excludes it).
  /// CPU-parallel strategies are never overridden: their scores DO depend
  /// on cpu_threads, which the cache key therefore includes.
  std::size_t compute_threads = 1;
  /// Test hook / strategy override: replaces core::compute for every job.
  /// Must be thread-safe; default (empty) calls core::compute. Receives
  /// the job's full Options including `cancel` and any `fault_plan`.
  std::function<core::BCResult(const graph::CSRGraph&, const core::Options&)> compute_fn;

  // --- resilience (docs/resilience.md) ---

  /// Whole-run retries after a run fails only transiently (every failed
  /// root's last fault was transient, or a transient DeviceFault escaped
  /// compute). Each retry bumps Options::fault_retry_epoch so a seeded
  /// FaultPlan deterministically clears, and backs off exponentially.
  std::uint32_t max_compute_retries = 2;
  /// Backoff before the first retry; grows exponentially per util::Backoff
  /// (the fleet-wide retry policy) up to `retry_backoff_max`. Sleeps are
  /// capped by the request deadline and interrupted by stop().
  std::chrono::milliseconds retry_backoff{1};
  std::chrono::milliseconds retry_backoff_max{250};
  /// After retries are exhausted (or a persistent fault), descend the
  /// ladder: requested GPU strategy → CpuParallel exact → Sampling
  /// approximation — marking the response degraded. false = surface the
  /// partial result (degraded) instead of substituting.
  bool enable_fallback = true;
  /// Root-sample width of the final (approximation) rung.
  std::uint32_t fallback_sample_roots = 64;

  // --- dynamic graphs (docs/dynamic.md) ---

  /// Background cache refresher for mutated graphs. Off by default: a
  /// mutation then simply drops the old epoch's cache entries (they could
  /// never serve the new fingerprint anyway — the key contains it — so
  /// this only reclaims bytes). When enabled, a dedicated refresher
  /// thread instead patches the hottest *refreshable* entries (exact
  /// full-BC, raw scores — see CachedResult::refreshable) forward across
  /// the epoch transition with dyn::refresh_scores and re-inserts them
  /// under the new fingerprint, so a hot graph stays cache-warm through
  /// mutations. Patched scores are value-equal to a fresh compute (1e-7
  /// relative) but not bitwise-identical — the trade the refresher opts
  /// into; entries beyond the budget, non-refreshable ones, and epochs
  /// superseded before their turn are invalidated as usual.
  struct RefreshConfig {
    bool enabled = false;
    /// Max entries patched per mutation (MRU first); the rest drop.
    std::size_t budget_entries = 4;
    /// Affected-source fraction above which a patch recomputes from
    /// scratch instead (dyn::IncrementalConfig::churn_threshold).
    double churn_threshold = 0.25;
    /// Worker threads of the refresher's private pool.
    std::size_t threads = 1;
    /// Deterministic-reduction stripe count (dyn::IncrementalConfig).
    std::size_t reduce_stripes = 32;
  };
  RefreshConfig refresh;

  // --- progressive approximation (docs/serving.md § Accuracy contracts) ---

  /// Accuracy-contract serving: stratified-sample geometry, the refinable
  /// estimate cache, and the background refinement worker.
  struct ApproxConfig {
    /// Refinable-estimate cache budget; 0 disables retention (budgeted
    /// queries still work, each from scratch, and nothing refines).
    std::size_t cache_bytes = 64ull << 20;
    /// Stratified-sample geometry (core::StratumPlan): roots per stratum
    /// and strata in rung 0. Part of the approx cache key.
    std::uint32_t stripe_roots = 128;
    std::uint32_t base_strata = 2;
    /// Permit background refinement (allow_refinement requests). The
    /// refinement thread starts lazily on the first queued job and runs
    /// at low priority: it yields whenever foreground work is queued.
    bool refinement = true;
  };
  ApproxConfig approx;

  /// Request-lifecycle tracing (docs/tracing.md): submit / cache-hit /
  /// coalesced / shed / reject instants and per-job request+compute spans,
  /// recorded wall-clock on per-thread host sinks (category kService /
  /// kCompute). The tracer is NOT propagated into kernel runs — concurrent
  /// computes would share the simulated-device timeline rows and break the
  /// per-row timestamp ordering the exporter guarantees; use hbc --trace
  /// for kernel-level captures. Non-owning: the Tracer must outlive the
  /// service. nullptr = off (one pointer test per instrumentation point).
  trace::Tracer* tracer = nullptr;
};

/// What one mutate_graph() call did (docs/dynamic.md).
struct MutationResult {
  std::uint64_t epoch = 0;  // graph's epoch id after the commit
  std::uint64_t fingerprint_before = 0;
  std::uint64_t fingerprint_after = 0;  // == before for all-no-op batches
  std::size_t applied = 0;              // updates that changed the graph
  std::size_t noops = 0;
  /// Old-epoch cache entries dropped by this mutation (refresher off, or
  /// shared-fingerprint entries kept: then 0).
  std::size_t cache_invalidated = 0;
  /// Old-epoch cache entries handed to the background refresher. The
  /// refresher may still drop some (budget, non-refreshable, superseded);
  /// those surface as MetricsSnapshot::refresh_invalidated.
  std::size_t cache_refresh_queued = 0;
  /// Refinable (approx) estimates invalidated by this mutation. Never
  /// refreshed forward: partial folds cannot be patched across epochs.
  std::size_t approx_invalidated = 0;
};

class BcService {
 public:
  explicit BcService(ServiceConfig config = {});
  ~BcService();

  BcService(const BcService&) = delete;
  BcService& operator=(const BcService&) = delete;

  // -- Graph registry -----------------------------------------------------

  /// Register (or replace) a graph under `id`. The fingerprint is hashed
  /// here, once, so submits are O(options) not O(graph).
  void load_graph(const std::string& id, graph::CSRGraph g);
  void load_graph(const std::string& id, std::shared_ptr<const graph::CSRGraph> g);

  /// Register a graph from a file path. ".hbcg"/".hbcgz" files are
  /// mmap'd and served zero-copy in place (residency `mapped` — N
  /// processes loading the same path share one page-cache copy); any
  /// other format loads to heap via graph::io::read_auto. The embedded
  /// fingerprint of mapped files is re-verified against the data before
  /// the graph is servable; corrupt files throw storage::FormatError.
  /// Returns the registered graph's fingerprint.
  std::uint64_t load_graph_file(const std::string& id, const std::string& path);

  /// Unregister `id` and drop its cached results. In-flight jobs keep a
  /// reference and finish normally. Returns false if `id` was unknown.
  bool evict_graph(const std::string& id);

  std::vector<std::string> graph_ids() const;
  std::shared_ptr<const graph::CSRGraph> graph(const std::string& id) const;

  /// Storage-level facts about a registered graph (docs/storage.md).
  struct GraphInfo {
    std::uint64_t fingerprint = 0;
    std::uint64_t epoch = 0;
    graph::storage::Residency residency = graph::storage::Residency::kHeap;
    graph::VertexId num_vertices = 0;
    graph::EdgeOffset num_directed_edges = 0;
    std::size_t resident_bytes = 0;   ///< heap bytes held right now
    std::size_t mapped_bytes = 0;     ///< bytes referenced via mmap
    std::size_t adjacency_bytes = 0;  ///< adjacency as stored (encoded if compressed)
    std::size_t decoded_bytes = 0;    ///< rows+cols once decoded/uploaded
  };
  std::optional<GraphInfo> graph_info(const std::string& id) const;

  /// Apply a batch of edge updates to a registered graph, committing a new
  /// epoch (dyn::VersionedGraph copy-on-write: in-flight queries keep
  /// computing on the snapshot they already hold; queries submitted after
  /// the call see the new epoch — and can never be answered from
  /// pre-mutation cache entries, whose keys carry the old fingerprint).
  /// Old-epoch cache entries are invalidated, or handed to the background
  /// refresher when ServiceConfig::refresh.enabled.
  ///
  /// Throws std::invalid_argument for an unknown id or a directed graph,
  /// std::out_of_range for updates naming vertices >= n, and
  /// std::runtime_error after stop(); the graph is unchanged in all cases.
  /// Concurrent mutations of one graph serialize; mutations of different
  /// graphs run concurrently.
  MutationResult mutate_graph(const std::string& id, const dyn::UpdateBatch& batch);

  /// Epochs committed for `id` (0 = never mutated or unknown id).
  std::uint64_t graph_epoch(const std::string& id) const;

  /// Block until every queued refresher job has been processed (including
  /// the one in flight). Returns immediately when the refresher is off.
  void drain_refreshes();

  /// Block until the background refinement queue is empty and the
  /// in-flight refinement (if any) finished. Immediate when idle.
  void drain_refinement();

  // -- Query path ---------------------------------------------------------

  /// Non-blocking under Reject/Shed; blocks for queue space under Block.
  /// Always returns a valid ticket — rejections come back as an already-
  /// completed future with the corresponding status.
  Ticket submit(Request request);

  /// Block for the response; fills Response::top per the ticket's top_k.
  Response wait(const Ticket& ticket) const;

  /// submit + wait convenience.
  Response query(Request request);

  // -- Lifecycle & observability ------------------------------------------

  /// Stop the service. Idempotent; the destructor calls it. Guarantees:
  ///  * new submits complete immediately with ServiceStopped;
  ///  * queued-but-unstarted jobs complete with ServiceStopped — they are
  ///    never computed and never hang their futures;
  ///  * in-flight computations are cancelled cooperatively (CancelToken)
  ///    and complete with ServiceStopped within one root boundary;
  ///  * workers are joined before stop() returns.
  void stop();

  std::size_t worker_count() const noexcept;
  std::size_t queue_depth() const { return queue_.depth(); }
  MetricsSnapshot metrics() const;
  /// Network-health hooks for a hosting net::Worker: forwarded into the
  /// metrics sink so fleet rejoins and heartbeat misses show up in
  /// metrics()/metrics_report() next to the compute-side counters.
  void note_reconnect() { metrics_.on_reconnect(); }
  void note_heartbeat_miss() { metrics_.on_heartbeat_miss(); }
  /// format_report(metrics()) plus one storage line per registered graph
  /// (residency kind, resident/mapped bytes) — how an operator confirms a
  /// fleet is actually serving a graph mapped rather than from heap.
  std::string metrics_report() const;

 private:
  struct GraphEntry {
    std::shared_ptr<const graph::CSRGraph> graph;
    std::uint64_t fingerprint = 0;
    /// Epoch id of `graph` (0 until the first mutation).
    std::uint64_t epoch = 0;
    /// Created lazily by the first mutate_graph(); load_graph over the
    /// same id starts fresh. `graph`/`fingerprint` mirror its current
    /// epoch so the submit path stays one map lookup.
    std::shared_ptr<dyn::VersionedGraph> versioned;
  };

  /// One mutation's worth of extracted cache entries for the refresher.
  struct RefreshJob {
    std::uint64_t old_fingerprint = 0;
    std::uint64_t new_fingerprint = 0;
    std::shared_ptr<const graph::CSRGraph> before;
    std::shared_ptr<const graph::CSRGraph> after;
    std::vector<dyn::EdgeUpdate> applied;
    std::vector<std::pair<std::string, std::shared_ptr<const CachedResult>>> entries;
  };

  /// One leader computation plus everyone awaiting it.
  struct Inflight {
    std::promise<Response> promise;
    std::shared_future<Response> future;
    std::string key;
    bool shed = false;
    /// Replaced (under mu_) by the worker's deadline-bearing source when
    /// compute starts; stop() cancels it so in-flight work aborts within
    /// one root boundary.
    util::CancelSource cancel;
  };

  struct Job {
    std::shared_ptr<Inflight> entry;
    std::shared_ptr<const graph::CSRGraph> graph;
    core::Options options;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;
    /// Progressive-approximation jobs (budget.active()): the contract,
    /// the contract-free approx-cache key, and the graph fingerprint at
    /// submit time. rung0_cap is the quality dial — set when admission
    /// shed the request, capping synchronous work at rung 0 with the
    /// rest of the contract refined in the background.
    bool budgeted = false;
    bool rung0_cap = false;
    QueryBudget budget;
    std::string approx_key;
    std::uint64_t fingerprint = 0;
  };

  /// One queued background-refinement task: upgrade `entry` toward
  /// `budget`'s contract on the pinned graph snapshot.
  struct RefineJob {
    std::shared_ptr<ApproxEntry> entry;
    std::shared_ptr<const graph::CSRGraph> graph;
    core::Options options;
    QueryBudget budget;
  };

  static Ticket ready_ticket(std::uint64_t id, Response response);
  /// The budgeted (progressive) submit path: approx-cache lookup,
  /// contract-keyed coalescing, admission (Shed = rung-0 cap), enqueue.
  Ticket submit_budgeted(Request request, std::uint64_t id,
                         std::chrono::steady_clock::time_point submitted);
  /// Worker-side progressive controller: upgrade the entry stratum by
  /// stratum until the contract is met (or rung 0 with refinement),
  /// publishing at each fold. Fills resp; throws like compute paths do.
  void compute_progressive(const Job& job, const util::CancelSource& cancel,
                           Response& resp);
  /// Queue a background upgrade of `entry` toward `budget`; starts the
  /// refinement thread lazily. Returns false when refinement is off.
  bool enqueue_refinement(RefineJob job);
  void refine_loop();
  /// This thread's host trace sink, or nullptr when tracing is off.
  trace::Sink* trace_sink() const;
  /// One kService instant tagged with the request id; no-op when off.
  void trace_instant(const char* name, std::uint64_t id) const;
  void worker_loop();
  void refresher_loop();
  core::BCResult run_compute(const graph::CSRGraph& g, const core::Options& o);
  /// Retry-with-backoff + degradation ladder around run_compute. Sets
  /// `degraded` when a substitute (or partial) result is returned. Throws
  /// util::Cancelled, std::invalid_argument, or the final rung's error.
  core::BCResult compute_resilient(const graph::CSRGraph& g,
                                   const core::Options& requested,
                                   const util::CancelSource& cancel,
                                   bool& degraded);

  ServiceConfig cfg_;
  ResultCache cache_;
  ApproxCache approx_cache_;
  AdmissionQueue<Job> queue_;
  ServiceMetrics metrics_;

  // mu_ guards graphs_, inflight_, and stopped_.
  mutable std::mutex mu_;
  std::unordered_map<std::string, GraphEntry> graphs_;
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
  bool stopped_ = false;

  std::atomic<std::uint64_t> next_id_{1};

  // Refresher state (all guarded by refresh_mu_ except the pool/thread,
  // which only the ctor and stop() touch).
  std::mutex refresh_mu_;
  std::condition_variable refresh_cv_;       // wakes the refresher
  std::condition_variable refresh_idle_cv_;  // wakes drain_refreshes()
  std::deque<RefreshJob> refresh_queue_;
  bool refresh_active_ = false;  // a job is being processed right now
  bool refresh_stop_ = false;
  std::unique_ptr<util::ThreadPool> refresh_pool_;
  std::thread refresher_;

  // Background-refinement state (guarded by refine_mu_ except the thread
  // handle, which only enqueue_refinement's lazy start and stop() touch,
  // both under refine_mu_ for the started_ decision).
  std::mutex refine_mu_;
  std::condition_variable refine_cv_;       // wakes the refinement worker
  std::condition_variable refine_idle_cv_;  // wakes drain_refinement()
  std::deque<RefineJob> refine_queue_;
  bool refine_active_ = false;
  bool refine_stop_ = false;
  std::thread refine_thread_;  // lazily started on the first queued job
  /// Shared cancel for all background strata; stop() fires it so a
  /// mid-stratum refinement unwinds at the next root boundary.
  util::CancelSource refine_cancel_;

  std::size_t workers_ = 0;
  std::unique_ptr<util::ThreadPool> pool_;  // last member: joins first
};

}  // namespace hbc::service
