// Service throughput: QPS vs worker count x cache-hit ratio.
//
// Replays a synthetic query workload (sampling-strategy approximate BC
// over a small-world graph) through hbc::service::BcService at 0% and
// ~90% request-level cache-hit ratios for 1, 4, and hardware worker
// threads. The cold-cache column measures how well the worker pool scales
// compute throughput (on a multi-core host 1 -> 4 workers should exceed
// 2x); the warm column shows the cache collapsing latency to lookups, at
// which point QPS is bounded by the submit path, not by workers.
//
// Environment knobs (bench/common.hpp conventions):
//   HBC_BENCH_SCALE     log2 vertices of the benchmark graph (default 11)
//   HBC_BENCH_ROOTS     sample_roots per query          (default 16)
//   HBC_BENCH_REQUESTS  requests per measurement        (default 96)

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/bc.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "util/timer.hpp"

namespace {

using namespace hbc;

struct Measurement {
  double qps = 0.0;
  double hit_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

Measurement run_workload(const graph::CSRGraph& g, std::size_t workers,
                         double hit_ratio, std::uint32_t sample_roots,
                         std::size_t requests) {
  service::ServiceConfig cfg;
  cfg.workers = workers;
  cfg.admission.max_queue_depth = requests;  // measure workers, not admission
  service::BcService svc(cfg);
  svc.load_graph("bench", std::make_shared<const graph::CSRGraph>(g));

  // hit_ratio ~0.9: 90% of requests cycle through a small warm set that
  // was computed once up front; the rest (and everything at ratio 0) get
  // unique seeds so each is a fresh computation.
  constexpr std::size_t kWarmSet = 4;
  auto make_request = [&](std::uint64_t seed) {
    service::Request r;
    r.graph_id = "bench";
    r.options.strategy = core::Strategy::Sampling;
    r.options.sample_roots = sample_roots;
    r.options.seed = seed;
    return r;
  };
  if (hit_ratio > 0.0) {
    for (std::size_t i = 0; i < kWarmSet; ++i) {
      (void)svc.query(make_request(i));  // pre-warm, excluded from timing
    }
  }

  util::Timer wall;
  std::vector<service::Ticket> tickets;
  tickets.reserve(requests);
  std::uint64_t unique_seed = 1u << 20;
  for (std::size_t i = 0; i < requests; ++i) {
    const bool warm = hit_ratio > 0.0 &&
                      (static_cast<double>(i % 10) < hit_ratio * 10.0);
    tickets.push_back(svc.submit(make_request(warm ? i % kWarmSet : unique_seed++)));
  }
  for (const auto& t : tickets) (void)svc.wait(t);
  const double seconds = wall.elapsed_seconds();

  const service::MetricsSnapshot m = svc.metrics();
  Measurement out;
  out.qps = seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  out.hit_rate = m.cache_hit_rate();
  out.p50_ms = m.latency_p50_ms;
  out.p99_ms = m.latency_p99_ms;
  return out;
}

}  // namespace

int main() {
  const std::uint32_t scale = bench::env_u32("HBC_BENCH_SCALE", 11);
  const std::uint32_t roots = bench::env_u32("HBC_BENCH_ROOTS", 16);
  const std::size_t requests = bench::env_u32("HBC_BENCH_REQUESTS", 96);

  const auto g = graph::gen::small_world({.num_vertices = 1u << scale, .k = 4, .seed = 3});

  bench::print_header(
      "service throughput: QPS vs workers x cache-hit ratio",
      "graph: " + g.summary() + "\nsampling strategy, " + std::to_string(roots) +
          " roots/query, " + std::to_string(requests) + " requests per cell");

  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> worker_counts{1, 4};
  if (hw != 1 && hw != 4) worker_counts.push_back(hw);

  std::printf("%8s | %28s | %28s\n", "", "cold cache (0% target)", "warm cache (~90% target)");
  std::printf("%8s | %10s %8s %8s | %10s %8s %8s\n", "workers", "QPS", "hit%",
              "p99 ms", "QPS", "hit%", "p99 ms");
  bench::print_rule();

  double qps_1 = 0.0, qps_4 = 0.0;
  for (const std::size_t w : worker_counts) {
    const Measurement cold = run_workload(g, w, 0.0, roots, requests);
    const Measurement warm = run_workload(g, w, 0.9, roots, requests);
    if (w == 1) qps_1 = cold.qps;
    if (w == 4) qps_4 = cold.qps;
    std::printf("%8zu | %10.1f %8.1f %8.2f | %10.1f %8.1f %8.2f\n", w, cold.qps,
                100.0 * cold.hit_rate, cold.p99_ms, warm.qps, 100.0 * warm.hit_rate,
                warm.p99_ms);
  }
  bench::print_rule();
  if (qps_1 > 0.0 && qps_4 > 0.0) {
    std::printf("cold-cache speedup 1 -> 4 workers: %.2fx (hardware reports %zu cores;"
                " expect >2x when >=4 are available)\n",
                qps_4 / qps_1, hw);
  }
  return 0;
}
