#pragma once

// Edge-list -> CSR construction with the clean-up passes every real graph
// file needs: symmetrization, self-loop removal, parallel-edge dedup, and
// support for isolated vertices (the paper notes the Jia et al. reference
// implementation *cannot* read graphs with isolated vertices — ours can,
// and a kernel-compatibility flag reproduces that limitation in tests).

#include <cstddef>
#include <span>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace hbc::graph {

struct BuildOptions {
  /// Insert the reverse of every edge so the CSR is symmetric.
  bool symmetrize = true;
  /// Drop u==v edges (they never lie on a shortest path between others).
  bool remove_self_loops = true;
  /// Collapse parallel edges; BC path counting assumes a simple graph.
  bool dedup = true;
  /// Sort each adjacency list (deterministic iteration, coalesced reads).
  bool sort_neighbors = true;
};

class GraphBuilder {
 public:
  /// num_vertices fixes n up front so trailing isolated vertices survive.
  explicit GraphBuilder(VertexId num_vertices, BuildOptions options = {});

  void add_edge(VertexId u, VertexId v);
  void add_edges(std::span<const Edge> edges);

  std::size_t pending_edges() const noexcept { return edges_.size(); }
  VertexId num_vertices() const noexcept { return num_vertices_; }

  /// Consume the accumulated edges and produce the CSR graph.
  /// The builder is left empty and reusable.
  CSRGraph build();

 private:
  VertexId num_vertices_;
  BuildOptions options_;
  EdgeList edges_;
};

/// One-shot convenience wrapper.
CSRGraph build_csr(VertexId num_vertices, std::span<const Edge> edges,
                   BuildOptions options = {});

}  // namespace hbc::graph
