// hbc::trace — capture correctness: Chrome export validity, bitwise
// determinism of GPU-model captures across host-thread counts, hybrid
// decision events against Algorithm 4's thresholds, and the off switch.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "hbc.hpp"

namespace hbc {
namespace {

graph::CSRGraph star_graph(graph::VertexId n) {
  graph::GraphBuilder b(n);
  for (graph::VertexId leaf = 1; leaf < n; ++leaf) b.add_edge(0, leaf);
  return b.build();
}

const trace::Arg* find_arg(const trace::Event& e, const char* key) {
  for (std::uint8_t i = 0; i < e.num_args; ++i) {
    if (std::strcmp(e.args[i].key, key) == 0) return &e.args[i];
  }
  return nullptr;
}

TEST(TraceExport, ChromeJsonValidatesAndCoversThePipeline) {
  const auto g = graph::gen::scale_free({.num_vertices = 1 << 10});
  trace::Tracer tracer;
  core::Options opt;
  opt.strategy = core::Strategy::Hybrid;
  opt.sample_roots = 32;
  opt.trace.tracer = &tracer;
  core::compute(g, opt);

  const std::string json = tracer.chrome_json();
  const trace::CheckResult check = trace::validate_chrome_trace(json);
  EXPECT_TRUE(check.ok) << check.error_text();
  EXPECT_GT(check.span_pairs, 0u);   // run/root/phase spans
  EXPECT_GT(check.instants, 0u);     // per-level frontier events
  EXPECT_GT(check.metadata, 0u);     // process/thread names
  EXPECT_EQ(tracer.dropped(), 0u);

  // The capture must contain the per-root phase structure the paper's
  // evaluation is built on.
  bool saw_sp = false, saw_dep = false, saw_level = false;
  for (const trace::Event& e : tracer.events()) {
    if (std::strcmp(e.name, "shortest-path") == 0) saw_sp = true;
    if (std::strcmp(e.name, "dependency") == 0) saw_dep = true;
    if (e.category == trace::kLevel) saw_level = true;
  }
  EXPECT_TRUE(saw_sp);
  EXPECT_TRUE(saw_dep);
  EXPECT_TRUE(saw_level);
}

TEST(TraceDeterminism, GpuModelCapturesAreBitwiseIdenticalAcrossThreads) {
  const auto g = graph::gen::small_world({.num_vertices = 1 << 9});
  for (const auto strategy :
       {core::Strategy::WorkEfficient, core::Strategy::Hybrid,
        core::Strategy::Sampling, core::Strategy::DirectionOptimized}) {
    std::string captures[2];
    const std::size_t thread_counts[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
      trace::Tracer tracer;
      core::Options opt;
      opt.strategy = strategy;
      opt.sample_roots = 24;
      opt.cpu_threads = thread_counts[i];
      opt.trace.tracer = &tracer;
      core::compute(g, opt);
      captures[i] = tracer.chrome_json();
    }
    EXPECT_EQ(captures[0], captures[1])
        << "trace for " << core::to_string(strategy)
        << " differs between 1 and 8 host threads";
  }
}

TEST(TraceHybrid, DecisionEventsMatchAlgorithmFourThresholds) {
  // Star graph from the hub: the frontier goes 1 -> n-1 -> 0, so with
  // small alpha/beta every level crossing reconsiders the strategy and
  // the first reconsideration must switch to edge-parallel.
  const auto g = star_graph(64);
  trace::Tracer tracer;
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0};
  config.hybrid.alpha = 4;
  config.hybrid.beta = 8;
  config.tracer = &tracer;
  kernels::run_hybrid(g, config);

  std::size_t decisions = 0, switches = 0;
  for (const trace::Event& e : tracer.events()) {
    if (std::strcmp(e.name, "decision") == 0) {
      ++decisions;
      const trace::Arg* dq = find_arg(e, "dq");
      const trace::Arg* q_next = find_arg(e, "q_next");
      const trace::Arg* to = find_arg(e, "to");
      ASSERT_NE(dq, nullptr);
      ASSERT_NE(q_next, nullptr);
      ASSERT_NE(to, nullptr);
      // Algorithm 4: only |delta Q| > alpha reaches a decision, and the
      // outcome is edge-parallel iff the next frontier exceeds beta.
      EXPECT_GT(dq->value.u, config.hybrid.alpha);
      EXPECT_EQ(q_next->value.u > config.hybrid.beta,
                std::strcmp(to->value.s, "edge-parallel") == 0);
    } else if (std::strcmp(e.name, "switch") == 0) {
      ++switches;
      const trace::Arg* from = find_arg(e, "from");
      const trace::Arg* to = find_arg(e, "to");
      ASSERT_NE(from, nullptr);
      ASSERT_NE(to, nullptr);
      EXPECT_STRNE(from->value.s, to->value.s);
    }
  }
  // Hub frontier: 1 -> 63 (|dq|=62 > 4, 63 > 8: switch to edge-parallel),
  // then 63 -> 0 (|dq|=63 > 4, 0 <= 8: switch back).
  EXPECT_EQ(decisions, 2u);
  EXPECT_EQ(switches, 2u);
}

TEST(TraceOff, NoTracerAndMaskedTracerRecordNothing) {
  const auto g = graph::gen::scale_free({.num_vertices = 1 << 9});
  core::Options opt;
  opt.strategy = core::Strategy::Hybrid;
  opt.sample_roots = 8;
  const auto baseline = core::compute(g, opt);  // tracer == nullptr: no crash

  trace::Tracer masked(trace::TracerConfig{.categories = trace::kNone});
  opt.trace.tracer = &masked;
  const auto traced = core::compute(g, opt);
  EXPECT_EQ(masked.event_count(), 0u);
  EXPECT_EQ(masked.dropped(), 0u);
  EXPECT_EQ(baseline.scores, traced.scores);  // tracing never changes results
}

TEST(TraceSink, OverflowDropsNewestAndCounts) {
  trace::Tracer tracer(trace::TracerConfig{.sink_capacity = 4});
  auto sink = tracer.make_sink("tiny", trace::kHostPid, 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink->instant("tick", trace::kService, i, {{"i", i}});
  }
  EXPECT_EQ(sink->size(), 4u);
  EXPECT_EQ(sink->dropped(), 6u);
  EXPECT_EQ(tracer.event_count(), 4u);
  const trace::CheckResult check = trace::validate_chrome_trace(tracer.chrome_json());
  EXPECT_TRUE(check.ok) << check.error_text();
}

TEST(TraceService, RequestLifecycleEventsAreCaptured) {
  trace::Tracer tracer;
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.tracer = &tracer;
  service::BcService svc(cfg);
  svc.load_graph("g", graph::gen::small_world({.num_vertices = 1 << 8}));
  service::Request req;
  req.graph_id = "g";
  req.options.strategy = core::Strategy::WorkEfficient;
  req.options.sample_roots = 8;
  std::vector<service::Ticket> tickets;
  for (int i = 0; i < 4; ++i) tickets.push_back(svc.submit(req));
  for (const auto& t : tickets) svc.wait(t);
  svc.stop();

  bool saw_submit = false, saw_request = false;
  for (const trace::Event& e : tracer.events()) {
    if (std::strcmp(e.name, "submit") == 0) saw_submit = true;
    if (std::strcmp(e.name, "request") == 0) saw_request = true;
  }
  EXPECT_TRUE(saw_submit);
  EXPECT_TRUE(saw_request);
  const trace::CheckResult check = trace::validate_chrome_trace(tracer.chrome_json());
  EXPECT_TRUE(check.ok) << check.error_text();
}

}  // namespace
}  // namespace hbc
