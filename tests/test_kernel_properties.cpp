// Property tests on kernel internals: the Algorithm 1–3 invariants
// (sigma counts, ends/S level structure, queue dedup), work accounting
// (work-efficient traverses exactly the reachable edges; level-check
// kernels inspect m per level), and memory-footprint claims (O(n) vs
// O(m) vs O(n^2)).

#include <gtest/gtest.h>

#include <set>

#include "cpu/brandes.hpp"
#include "cpu/naive.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "gpusim/device.hpp"
#include "kernels/bc_state.hpp"
#include "kernels/kernels.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::VertexId;
using kernels::BCWorkspace;

class WorkspaceProperty : public testing::TestWithParam<std::uint64_t> {};

// Drive the work-efficient forward stage to completion on a generated
// graph and check every structural invariant of Algorithms 1–2.
TEST_P(WorkspaceProperty, ForwardStageInvariants) {
  const std::uint64_t seed = GetParam();
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 300, .attach = 2, .seed = seed});
  const VertexId root = static_cast<VertexId>(seed % g.num_vertices());

  gpusim::Device device(gpusim::test_device());
  device.begin_run(1);
  auto ctx = device.block(0);

  BCWorkspace ws(g);
  ws.init_root(root, ctx);
  while (true) {
    ws.we_forward_level(ctx);
    if (ws.q_next_len() == 0) break;
    ws.finish_level(ctx);
  }

  const auto bfs = graph::bfs(g, root);

  // (1) Distances equal BFS distances.
  const auto d = ws.distances();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(d[v], bfs.distance[v]) << "vertex " << v;
  }

  // (2) Sigma equals the naive path count.
  const auto pc = cpu::count_paths(g, root);
  const auto sigma = ws.sigmas();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(sigma[v], pc.sigma[v]) << "vertex " << v;
  }

  // (3) S holds each reached vertex exactly once (CAS dedup).
  const auto stack = ws.stack();
  EXPECT_EQ(stack.size(), bfs.reached);
  std::set<VertexId> unique(stack.begin(), stack.end());
  EXPECT_EQ(unique.size(), stack.size());

  // (4) ends is a CSR-like level index: ends[i]..ends[i+1] covers level i
  //     vertices, in traversal order, ends_len = max_depth + 2.
  const auto ends = ws.ends();
  ASSERT_EQ(ends.size(), static_cast<std::size_t>(ws.max_depth()) + 2);
  EXPECT_EQ(ends.front(), 0u);
  EXPECT_EQ(ends.back(), stack.size());
  for (std::size_t level = 0; level + 1 < ends.size(); ++level) {
    for (std::uint64_t i = ends[level]; i < ends[level + 1]; ++i) {
      EXPECT_EQ(d[stack[i]], level) << "S index " << i;
    }
    EXPECT_EQ(ends[level + 1] - ends[level], bfs.frontiers[level]);
  }

  // (5) max_depth equals the BFS eccentricity.
  EXPECT_EQ(ws.max_depth(), bfs.max_depth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkspaceProperty, testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(WorkAccounting, WorkEfficientTraversesExactlyReachableEdges) {
  const CSRGraph g = graph::gen::delaunay_mesh({.scale = 10, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0};
  const auto r = kernels::run_work_efficient(g, config);
  // Connected mesh: forward traverses every directed edge once; the
  // dependency stage traverses them again (neighbor traversal) and skips
  // only the deepest level's adjacency.
  EXPECT_GE(r.metrics.counters.edges_traversed, g.num_directed_edges());
  EXPECT_LE(r.metrics.counters.edges_traversed, 2 * g.num_directed_edges());
  EXPECT_EQ(r.metrics.counters.edges_inspected, r.metrics.counters.edges_traversed);
}

TEST(WorkAccounting, EdgeParallelInspectsMPerLevel) {
  const CSRGraph g = graph::gen::road({.scale = 10, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0};
  const auto r = kernels::run_edge_parallel(g, config);
  const auto bfs = graph::bfs(g, 0);
  // Forward: one full m-edge scan per level 0..max_depth (inclusive of
  // the terminating empty scan); backward: one per level max_depth-1..1.
  const std::uint64_t fwd_scans = bfs.max_depth + 1;
  const std::uint64_t bwd_scans = bfs.max_depth >= 2 ? bfs.max_depth - 1 : 0;
  EXPECT_EQ(r.metrics.counters.edges_inspected,
            (fwd_scans + bwd_scans) * g.num_directed_edges());
  // Futile inspections dominate on this high-diameter graph (the paper's
  // central observation).
  EXPECT_GT(r.metrics.counters.edges_inspected,
            50 * r.metrics.counters.edges_traversed);
}

TEST(WorkAccounting, WorkEfficientBeatsEdgeParallelOnHighDiameter) {
  // Diameter is what the speedup scales with (the paper's ~10x needs
  // n >= 10^5); at test scale 14 the model must still show a clear win.
  const CSRGraph g = graph::gen::road({.scale = 14, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0, 1, 2, 3};
  const auto we = kernels::run_work_efficient(g, config);
  const auto ep = kernels::run_edge_parallel(g, config);
  EXPECT_LT(we.metrics.sim_seconds, ep.metrics.sim_seconds / 2.0);
}

TEST(WorkAccounting, EdgeParallelCompetitiveOnSmallWorld) {
  const CSRGraph g =
      graph::gen::small_world({.num_vertices = 1 << 12, .k = 5, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0, 1, 2, 3};
  const auto we = kernels::run_work_efficient(g, config);
  const auto ep = kernels::run_edge_parallel(g, config);
  // §IV.B: a wrong work-efficient choice costs at most ~2.2x; the
  // edge-parallel method must not lose by much more than that here either.
  EXPECT_LT(we.metrics.sim_seconds / ep.metrics.sim_seconds, 2.5);
  EXPECT_LT(ep.metrics.sim_seconds / we.metrics.sim_seconds, 2.5);
}

TEST(Memory, FootprintOrdering) {
  // O(n) < O(n + m) < O(n^2) at the paper's scales.
  const VertexId n = 1 << 16;
  const graph::EdgeOffset m = 16ull << 16;
  const auto we = BCWorkspace::work_efficient_bytes(n);
  const auto jia = BCWorkspace::jia_bytes(n, m);
  const auto fan = BCWorkspace::gpufan_bytes(n);
  EXPECT_LT(we, jia);
  EXPECT_LT(jia, fan);
  // GPU-FAN at scale 16 needs > 6 GB: the Figure 5 OOM cliff.
  EXPECT_GT(fan, 6ull << 30);
  EXPECT_LT(BCWorkspace::gpufan_bytes(1 << 15), 6ull << 30);
}

TEST(Memory, GpuFanRunsOutOfMemoryAtScale) {
  const CSRGraph g = graph::gen::kronecker({.scale = 16, .edge_factor = 2, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();  // 6 GB
  config.roots = {0};
  EXPECT_THROW(kernels::run_gpufan(g, config), gpusim::DeviceOutOfMemory);
  // The paper's methods are fine at the same scale.
  EXPECT_NO_THROW(kernels::run_work_efficient(g, config));
  EXPECT_NO_THROW(kernels::run_sampling(g, config));
}

TEST(Memory, HighWaterReportedInMetrics) {
  const CSRGraph g = graph::gen::small_world({.num_vertices = 512, .k = 3, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0};
  const auto we = kernels::run_work_efficient(g, config);
  const auto fan = kernels::run_gpufan(g, config);
  EXPECT_GT(we.metrics.device_memory_high_water, 0u);
  EXPECT_GT(fan.metrics.device_memory_high_water, we.metrics.device_memory_high_water);
}

TEST(PredecessorBitmap, SameScoresMoreMemoryLessScatter) {
  const CSRGraph g = graph::gen::delaunay_mesh({.scale = 10, .seed = 1});
  kernels::RunConfig plain;
  plain.device = gpusim::gtx_titan();
  plain.roots = {0, 11, 37};
  kernels::RunConfig with_bitmap = plain;
  with_bitmap.use_predecessor_bitmap = true;

  const auto a = kernels::run_work_efficient(g, plain);
  const auto b = kernels::run_work_efficient(g, with_bitmap);

  // Identical BC output (the trade-off is purely storage vs traffic).
  ASSERT_EQ(a.bc.size(), b.bc.size());
  for (std::size_t i = 0; i < a.bc.size(); ++i) {
    EXPECT_NEAR(a.bc[i], b.bc[i], 1e-9 * std::max(1.0, a.bc[i]));
  }
  // The bitmap costs O(m) bits of device memory per block...
  EXPECT_GT(b.metrics.device_memory_high_water, a.metrics.device_memory_high_water);
  // ...and the backward stage touches only true successors, so the
  // useful-traversal count drops below the neighbor-traversal variant's.
  EXPECT_LT(b.metrics.counters.edges_traversed, a.metrics.counters.edges_traversed);
}

TEST(PredecessorBitmap, MatchesOracleAcrossFamilies) {
  for (const char* fam : {"kron", "road", "smallworld"}) {
    const CSRGraph g = graph::gen::family_by_name(fam).make(8, 5);
    kernels::RunConfig c;
    c.device = gpusim::gtx_titan();
    c.use_predecessor_bitmap = true;
    const auto r = kernels::run_work_efficient(g, c);
    const auto oracle = hbc::cpu::brandes(g).bc;
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_NEAR(r.bc[i], oracle[i], 1e-9 * std::max(1.0, oracle[i])) << fam;
    }
  }
}

TEST(PerRootStats, FrontiersMatchBfs) {
  const CSRGraph g = graph::gen::delaunay_mesh({.scale = 8, .seed = 2});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {5};
  config.collect_per_root_stats = true;
  const auto r = kernels::run_work_efficient(g, config);
  ASSERT_EQ(r.per_root.size(), 1u);
  const auto& stats = r.per_root[0];
  const auto bfs = graph::bfs(g, 5);
  ASSERT_EQ(stats.iterations.size(), bfs.frontiers.size());
  for (std::size_t i = 0; i < bfs.frontiers.size(); ++i) {
    EXPECT_EQ(stats.iterations[i].vertex_frontier, bfs.frontiers[i]) << "level " << i;
    EXPECT_EQ(stats.iterations[i].edge_frontier, bfs.edge_frontiers[i]) << "level " << i;
    EXPECT_GT(stats.iterations[i].cycles, 0u);
  }
  EXPECT_EQ(stats.max_depth, bfs.max_depth);
}

TEST(PerRootStats, ModesRecordedByHybrid) {
  const CSRGraph g = graph::gen::kronecker({.scale = 12, .edge_factor = 8, .seed = 1});
  kernels::RunConfig config;
  config.device = gpusim::gtx_titan();
  config.roots = {0};
  config.collect_per_root_stats = true;
  config.hybrid.alpha = 64;
  config.hybrid.beta = 64;
  const auto r = kernels::run_hybrid(g, config);
  ASSERT_EQ(r.per_root.size(), 1u);
  bool saw_we = false, saw_ep = false;
  for (const auto& it : r.per_root[0].iterations) {
    saw_we |= it.mode == kernels::Mode::WorkEfficient;
    saw_ep |= it.mode == kernels::Mode::EdgeParallel;
  }
  // A kron graph's frontier explodes: both modes must appear.
  EXPECT_TRUE(saw_we);
  EXPECT_TRUE(saw_ep);
}

}  // namespace
