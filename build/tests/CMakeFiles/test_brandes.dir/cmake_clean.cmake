file(REMOVE_RECURSE
  "CMakeFiles/test_brandes.dir/test_brandes.cpp.o"
  "CMakeFiles/test_brandes.dir/test_brandes.cpp.o.d"
  "test_brandes"
  "test_brandes.pdb"
  "test_brandes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brandes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
