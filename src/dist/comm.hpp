#pragma once

// In-process message-passing substrate shaped after the MPI subset the
// paper's multi-node implementation needs (§V.D): ranks, barrier,
// reduce/allreduce of double vectors (MPI_Reduce of the per-node BC
// scores), broadcast, gather, and point-to-point send/recv.
//
// Each rank runs on its own thread; collectives synchronize through a
// shared World. This keeps the programming model of the original code
// (SPMD over nodes) while running inside one process — the cluster *cost*
// is modelled separately in dist/cluster.hpp.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

namespace hbc::dist {

class Communicator;

/// Owns the shared state for one SPMD execution over `size` ranks.
class World {
 public:
  explicit World(int size);

  int size() const noexcept { return size_; }

  /// Run fn(comm) on `size` threads, one per rank; blocks until all
  /// return. Exceptions in any rank propagate (first one wins).
  void run(const std::function<void(Communicator&)>& fn);

 private:
  friend class Communicator;

  struct Message {
    int tag;
    std::vector<double> payload;
  };

  void barrier_wait();

  int size_;

  // Sense-reversing barrier.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Collective scratch.
  std::mutex coll_mutex_;
  std::vector<double> coll_buffer_;
  std::vector<std::vector<double>> gather_buffer_;

  // Point-to-point mailboxes: mailbox_[dst * size + src].
  std::mutex p2p_mutex_;
  std::condition_variable p2p_cv_;
  std::vector<std::deque<Message>> mailboxes_;
};

/// Per-rank handle (valid only inside World::run).
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return world_->size(); }

  void barrier();

  /// Element-wise sum of `data` across ranks into `out` on `root`
  /// (out ignored elsewhere; may alias data on root).
  void reduce_sum(std::span<const double> data, std::span<double> out, int root);

  /// reduce_sum + broadcast.
  void allreduce_sum(std::span<const double> data, std::span<double> out);

  /// Copy root's `data` into every rank's `data`.
  void broadcast(std::span<double> data, int root);

  /// Gather each rank's vector on root; out[r] is rank r's contribution
  /// (resized on root; untouched elsewhere).
  void gather(std::span<const double> data, std::vector<std::vector<double>>& out,
              int root);

  /// Blocking tagged point-to-point.
  void send(int dst, int tag, std::span<const double> payload);
  std::vector<double> recv(int src, int tag);

 private:
  friend class World;
  Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

  World* world_;
  int rank_;
};

}  // namespace hbc::dist
