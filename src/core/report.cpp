#include "core/report.hpp"

#include <cstdarg>
#include <cinttypes>
#include <cstdio>

#include "core/teps.hpp"

namespace hbc::core {

namespace {

void append_line(std::string& out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  out += buffer;
  out += '\n';
}

bool is_gpu_model(Strategy s) {
  return s != Strategy::CpuSerial && s != Strategy::CpuParallel &&
         s != Strategy::CpuFineGrained;
}

}  // namespace

std::string format_summary(const BCResult& result) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "%s: %" PRIu64 " roots, %.4g s, %.1f MTEPS%s",
                to_string(result.strategy), result.roots_processed,
                result.time_seconds, as_mteps(result.teps),
                result.approximate ? " [approximate]" : "");
  return buffer;
}

std::string format_report(const graph::CSRGraph& g, const BCResult& result,
                          const ReportOptions& options) {
  std::string out;
  append_line(out, "graph      %s", g.summary().c_str());
  append_line(out, "strategy   %s%s", to_string(result.strategy),
              result.approximate ? " (approximate)" : "");
  append_line(out, "roots      %" PRIu64, result.roots_processed);
  append_line(out, "time       %.6f s %s", result.time_seconds,
              is_gpu_model(result.strategy) ? "(simulated device)" : "(wall clock)");
  append_line(out, "TEPS       %.2f MTEPS (Eq. 4)", as_mteps(result.teps));

  if (is_gpu_model(result.strategy)) {
    const auto& m = result.kernel_metrics;
    if (options.counters) {
      append_line(out, "traversed  %" PRIu64 " edges (useful work)",
                  m.counters.edges_traversed);
      append_line(out, "inspected  %" PRIu64 " edges (incl. futile level checks)",
                  m.counters.edges_inspected);
      append_line(out, "atomics    %" PRIu64, m.counters.atomic_ops);
      append_line(out, "levels     %" PRIu64 " BFS iterations (%" PRIu64
                       " queue-driven, %" PRIu64 " scan-driven)",
                  m.counters.bfs_iterations, m.we_levels, m.ep_levels);
      if (m.sampling_median_depth > 0.0) {
        append_line(out, "sampling   median depth %.0f -> %s",
                    m.sampling_median_depth,
                    m.sampling_chose_edge_parallel ? "edge-parallel"
                                                   : "work-efficient");
      }
    }
    if (options.memory) {
      append_line(out, "device mem %.1f MiB high water",
                  static_cast<double>(m.device_memory_high_water) / (1024.0 * 1024.0));
    }
  }

  if (options.top_k > 0) {
    append_line(out, "top %zu vertices:", options.top_k);
    for (const auto& [v, score] : top_k(result.scores, options.top_k)) {
      append_line(out, "  %10u  %16.4f", v, score);
    }
  }
  return out;
}

}  // namespace hbc::core
