#include "core/approx.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hbc::core {

namespace {

std::uint32_t stripe_of(const StratumPlan& plan) {
  return std::max<std::uint32_t>(plan.stripe_roots, 1);
}

}  // namespace

std::uint32_t total_strata(std::size_t n, const StratumPlan& plan) {
  const std::size_t w = stripe_of(plan);
  return static_cast<std::uint32_t>((n + w - 1) / w);
}

std::uint32_t strata_for_rung(const StratumPlan& plan, std::uint32_t rung) {
  const std::uint32_t base = std::max<std::uint32_t>(plan.base_strata, 2);
  // Saturating shift: a silly rung must not wrap to a tiny stratum count.
  if (rung >= 32) return UINT32_MAX;
  const std::uint64_t s = static_cast<std::uint64_t>(base) << rung;
  return s > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(s);
}

std::size_t roots_for_strata(std::size_t n, const StratumPlan& plan,
                             std::uint32_t strata) {
  return std::min<std::size_t>(
      static_cast<std::size_t>(strata) * stripe_of(plan), n);
}

std::vector<graph::VertexId> stratum_roots(std::size_t n, const StratumPlan& plan,
                                           std::uint64_t seed,
                                           std::uint32_t stratum) {
  const std::size_t w = stripe_of(plan);
  const std::size_t begin = static_cast<std::size_t>(stratum) * w;
  if (begin >= n) return {};
  const std::size_t end = std::min(begin + w, n);
  // The prefix property of sample_roots makes this slice independent of
  // how many strata are ultimately drawn.
  std::vector<graph::VertexId> perm =
      sample_roots(static_cast<graph::VertexId>(n),
                   static_cast<std::uint32_t>(end), seed);
  return {perm.begin() + static_cast<std::ptrdiff_t>(begin),
          perm.begin() + static_cast<std::ptrdiff_t>(end)};
}

RefinableEstimate::RefinableEstimate(std::size_t n, StratumPlan plan,
                                     std::uint64_t seed)
    : n_(n), plan_(plan), seed_(seed), raw_sums_(n, 0.0), raw_sq_(n, 0.0) {}

std::uint32_t RefinableEstimate::rung() const noexcept {
  const std::uint32_t cap = total_strata(n_, plan_);
  std::uint32_t r = 0;
  // A rung is complete when its stratum count (or the saturation cap,
  // whichever is smaller) has been folded.
  while (strata_ >= std::min(strata_for_rung(plan_, r + 1), cap) &&
         std::min(strata_for_rung(plan_, r + 1), cap) >
             std::min(strata_for_rung(plan_, r), cap)) {
    ++r;
  }
  return r;
}

std::vector<graph::VertexId> RefinableEstimate::next_stratum_roots() const {
  if (saturated()) return {};
  return stratum_roots(n_, plan_, seed_, strata_);
}

void RefinableEstimate::fold(const std::vector<double>& stratum_scores,
                             std::size_t stratum_root_count) {
  if (saturated()) {
    throw std::invalid_argument("RefinableEstimate::fold: already saturated");
  }
  if (stratum_scores.size() != n_) {
    throw std::invalid_argument("RefinableEstimate::fold: score size mismatch");
  }
  const std::size_t expect =
      std::min<std::size_t>(stripe_of(plan_), n_ - roots_used_);
  if (stratum_root_count != expect) {
    throw std::invalid_argument("RefinableEstimate::fold: stratum out of order");
  }
  for (std::size_t v = 0; v < n_; ++v) {
    const double p = stratum_scores[v];
    raw_sums_[v] += p;
    raw_sq_[v] += p * p;
  }
  ++strata_;
  roots_used_ += stratum_root_count;
  if (strata_ >= 2 && !saturated()) {
    const double e = stderr_estimate();
    reported_ = have_reported_ ? std::min(reported_, e) : e;
    have_reported_ = true;
  }
}

double RefinableEstimate::stderr_estimate() const {
  if (saturated() || strata_ < 2) return 0.0;
  const double S = static_cast<double>(strata_);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t v = 0; v < n_; ++v) {
    const double mean = raw_sums_[v] / S;
    double var = (raw_sq_[v] - raw_sums_[v] * raw_sums_[v] / S) / (S - 1.0);
    if (var < 0.0) var = 0.0;  // catastrophic-cancellation guard
    num += std::sqrt(var / S);
    den += mean;
  }
  return den > 0.0 ? num / den : 0.0;
}

std::vector<double> RefinableEstimate::scores(bool halve_undirected,
                                              bool normalize) const {
  std::vector<double> out = raw_sums_;
  if (roots_used_ > 0 && roots_used_ < n_) {
    const double scale =
        static_cast<double>(n_) / static_cast<double>(roots_used_);
    for (double& s : out) s *= scale;
  }
  if (halve_undirected) {
    for (double& s : out) s *= 0.5;
  }
  if (normalize) {
    out = normalized(out);
  }
  return out;
}

std::size_t RefinableEstimate::bytes() const noexcept {
  return sizeof(RefinableEstimate) +
         (raw_sums_.capacity() + raw_sq_.capacity()) * sizeof(double);
}

std::string approx_signature(const Options& options, const StratumPlan& plan) {
  Options base = options;
  base.roots.clear();
  base.sample_roots = 0;
  std::string sig = options_signature(base);
  sig += ";stratified=" + std::to_string(stripe_of(plan)) + "," +
         std::to_string(std::max<std::uint32_t>(plan.base_strata, 2));
  return sig;
}

}  // namespace hbc::core
