#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace hbc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // ~4 chunks per worker balances dispatch overhead against imbalance.
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::parallel_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t t = workers_.size();
  if (n == 0 || t == 0) return;
  if (t == 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t per = n / t;
  const std::size_t extra = n % t;
  std::size_t begin = 0;
  for (std::size_t tid = 0; tid < t; ++tid) {
    const std::size_t len = per + (tid < extra ? 1 : 0);
    const std::size_t end = begin + len;
    if (len > 0) {
      submit([tid, begin, end, &fn] { fn(tid, begin, end); });
    }
    begin = end;
  }
  wait_idle();
}

void ThreadPool::parallel_chunks(
    std::size_t n, std::size_t num_chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (num_chunks == 0) throw std::invalid_argument("parallel_chunks: num_chunks == 0");
  if (n == 0) return;
  const std::size_t per = n / num_chunks;
  const std::size_t extra = n % num_chunks;
  if (workers_.size() <= 1) {
    std::size_t begin = 0;
    for (std::size_t c = 0; c < num_chunks && begin < n; ++c) {
      const std::size_t end = begin + per + (c < extra ? 1 : 0);
      if (end > begin) fn(c, begin, end);
      begin = end;
    }
    return;
  }
  std::size_t begin = 0;
  for (std::size_t c = 0; c < num_chunks && begin < n; ++c) {
    const std::size_t end = begin + per + (c < extra ? 1 : 0);
    if (end > begin) {
      submit([c, begin, end, &fn] { fn(c, begin, end); });
    }
    begin = end;
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hbc::util
