#pragma once

// dyn::VersionedGraph — an epoch-versioned mutable graph.
//
// The CSR format every engine consumes is immutable by design: kernels
// read row offsets and adjacency with no synchronization. This class adds
// mutation *around* that invariant instead of breaking it: a batch of
// edge inserts/deletes commits by rebuilding a fresh CSR snapshot
// (copy-on-write), and each committed batch produces a new immutable
// **epoch** — (id, fingerprint, shared_ptr<const CSRGraph>). In-flight
// readers keep the shared_ptr they grabbed and continue on their snapshot
// while mutators advance; nothing is ever modified in place.
//
// Commit semantics match applying the batch's updates sequentially:
// within one batch the last operation on an edge wins, updates that do
// not change the graph (inserting a present edge, removing an absent one,
// self loops) are dropped as no-ops, and the surviving *applied* set is
// reported normalized (u < v, deduplicated) so incremental engines can
// reason about exactly the edges that changed.
//
// Only undirected graphs are mutable: the incremental BC machinery
// downstream (dyn::IncrementalBC, cpu::DynamicBC) relies on the
// d(s,u) == d(u,s) symmetry, so the constructor rejects directed graphs
// up front rather than letting a later refresh silently corrupt scores.
//
// Thread safety: current() and apply() may be called concurrently from
// any thread; commits serialize on an internal mutex. An epoch, once
// returned, is a value — safe to read forever without the VersionedGraph.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "trace/trace.hpp"

namespace hbc::dyn {

/// One edge mutation. Edges are undirected: {u,v} and {v,u} name the same
/// edge and are normalized to u < v when applied.
struct EdgeUpdate {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  bool insert = true;  // false = remove

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// A batch of updates committed atomically as one epoch transition.
struct UpdateBatch {
  std::vector<EdgeUpdate> edges;

  UpdateBatch& insert(graph::VertexId u, graph::VertexId v) {
    edges.push_back({u, v, true});
    return *this;
  }
  UpdateBatch& remove(graph::VertexId u, graph::VertexId v) {
    edges.push_back({u, v, false});
    return *this;
  }
  std::size_t size() const noexcept { return edges.size(); }
  bool empty() const noexcept { return edges.empty(); }
};

/// An immutable snapshot of the graph at one version. `graph` is shared
/// with every other holder of the epoch; `fingerprint` is the same
/// structural hash the service keys its result cache on
/// (graph::CSRGraph::fingerprint), so epoch transitions are observable as
/// fingerprint transitions.
struct Epoch {
  std::uint64_t id = 0;
  std::uint64_t fingerprint = 0;
  std::shared_ptr<const graph::CSRGraph> graph;
};

/// What one apply() did: the epochs on either side of the commit plus the
/// normalized set of updates that actually changed the graph.
struct CommitResult {
  Epoch before;
  Epoch after;
  /// Effective updates, normalized (u < v), one entry per changed edge.
  /// Empty when the whole batch was a no-op (before.id == after.id then).
  std::vector<EdgeUpdate> applied;
  /// Updates dropped: self loops, inserts of present edges, removes of
  /// absent ones, and same-edge operations superseded within the batch.
  std::size_t noops = 0;
};

class VersionedGraph {
 public:
  /// Epoch 0 wraps `initial` as-is (no rebuild). Throws
  /// std::invalid_argument for directed graphs. `tracer` (non-owning, may
  /// be null) receives a kDyn "epoch-commit" instant per commit.
  explicit VersionedGraph(graph::CSRGraph initial, trace::Tracer* tracer = nullptr);
  explicit VersionedGraph(std::shared_ptr<const graph::CSRGraph> initial,
                          trace::Tracer* tracer = nullptr);

  /// Snapshot of the newest committed epoch.
  Epoch current() const;
  std::uint64_t epoch_id() const;

  /// Commit `batch`: drop no-ops, rebuild the CSR with the surviving
  /// updates, advance the epoch. A batch with no effective updates keeps
  /// the current epoch (no rebuild, CommitResult::applied empty). Throws
  /// std::out_of_range if any update names a vertex >= num_vertices —
  /// the graph is untouched then. Concurrent apply() calls serialize.
  CommitResult apply(const UpdateBatch& batch);

  /// Two-phase form for callers that must do fallible work between
  /// building the new snapshot and publishing it (IncrementalBC refreshes
  /// scores in between so a cancelled refresh never strands the epoch
  /// ahead of the scores): stage() computes the CommitResult without
  /// advancing, commit() publishes it. commit() throws std::logic_error
  /// if another commit landed since the stage (stale base epoch);
  /// a staged no-op commit is accepted and does nothing.
  CommitResult stage(const UpdateBatch& batch) const;
  void commit(const CommitResult& staged);

  /// Committed batches that changed the graph (== current().id).
  std::uint64_t commits() const { return epoch_id(); }

  /// Persist the newest committed epoch as a .hbcg (optionally varint-
  /// compressed) file and return it. The epoch's structural fingerprint
  /// is embedded in the header, so a later open_mapped() verifies it is
  /// reopening exactly this epoch. Mutation keeps the heap backing; this
  /// is the handoff point to the out-of-core serving path.
  Epoch commit_to_file(const std::string& path, bool compress = false) const;

  /// Swap the current snapshot for a zero-copy mapped view of `path`
  /// (written by commit_to_file). Throws storage::FormatError if the
  /// file is corrupt or its fingerprint does not match the current
  /// epoch's — the epoch id is preserved, only the backing changes.
  /// In-flight readers keep their heap snapshot. Returns the new epoch.
  Epoch reopen_from_file(const std::string& path);

 private:
  CommitResult stage_locked(const UpdateBatch& batch) const;
  void commit_locked(const CommitResult& staged);

  trace::Tracer* tracer_ = nullptr;

  mutable std::mutex mu_;  // guards current_ and serializes commits
  Epoch current_;
};

}  // namespace hbc::dyn
