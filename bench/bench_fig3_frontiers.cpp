// Figure 3 reproduction: evolution of the vertex frontier (as % of n)
// across BFS iterations for three roots on each of the five graph
// classes.
//
// Paper finding: high-diameter classes (rgg, delaunay, road) keep the
// frontier tiny and slowly-changing for hundreds of iterations; kron and
// smallworld explode past half the graph within a few iterations — the
// structural dichotomy the hybrid and sampling methods exploit.

#include <cstdio>

#include "bench/common.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace hbc;

  const std::uint32_t scale = bench::env_u32("HBC_BENCH_SCALE", 13);

  bench::print_header("Figure 3 — vertex-frontier evolution per BFS iteration",
                      "frontier size as percentage of total vertices; 3 roots per graph");

  for (const auto& family : graph::gen::figure3_family()) {
    const graph::CSRGraph g = family.make(scale, /*seed=*/1);
    const double n = static_cast<double>(g.num_vertices());
    std::printf("\n%s  (%s)\n", family.name.c_str(), g.summary().c_str());

    for (const graph::VertexId paper_root_id : {0u, 2121u, 6004u}) {
      const graph::VertexId root = bench::paper_root(g, paper_root_id);
      const auto bfs = graph::bfs(g, root);

      double peak = 0.0;
      std::size_t peak_iter = 0;
      for (std::size_t i = 0; i < bfs.frontiers.size(); ++i) {
        const double pct = 100.0 * static_cast<double>(bfs.frontiers[i]) / n;
        if (pct > peak) {
          peak = pct;
          peak_iter = i;
        }
      }
      std::printf("  root %6u: %4zu iterations, peak frontier %6.2f%% at iter %zu | ",
                  root, bfs.frontiers.size(), peak, peak_iter);
      // Sparkline of up to 24 sampled iterations.
      const std::size_t samples = std::min<std::size_t>(24, bfs.frontiers.size());
      for (std::size_t s = 0; s < samples; ++s) {
        const std::size_t i = s * bfs.frontiers.size() / samples;
        const double pct = 100.0 * static_cast<double>(bfs.frontiers[i]) / n;
        const char* glyph = pct < 0.5    ? "_"
                            : pct < 2.0  ? "."
                            : pct < 10.0 ? ":"
                            : pct < 30.0 ? "+"
                            : pct < 60.0 ? "#"
                                         : "@";
        std::fputs(glyph, stdout);
      }
      std::fputc('\n', stdout);
    }
  }

  bench::print_rule();
  std::printf("legend: _ <0.5%%  . <2%%  : <10%%  + <30%%  # <60%%  @ >=60%% of vertices\n"
              "paper: rgg/delaunay/road frontiers stay small for all iterations;\n"
              "kron/smallworld exceed 50%% of vertices within a few iterations.\n");
  return 0;
}
