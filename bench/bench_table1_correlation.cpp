// Table I reproduction: Pearson correlation of the vertex-frontier size
// (rho_v,t) and edge-frontier size (rho_e,t) with per-iteration execution
// time of the work-efficient method, for three fixed roots on the five
// graph classes of Figure 3.
//
// Paper finding: rho_v,t is high (>= ~0.7) for every root and every graph
// class, while rho_e,t collapses on the scale-free kron graph — which is
// why Algorithm 4 keys its decisions on the vertex frontier it already
// has in the queue.

#include <cstdio>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hbc;

  const std::uint32_t scale = bench::env_u32("HBC_BENCH_SCALE", 13);

  bench::print_header(
      "Table I — correlation of frontier sizes with iteration time",
      "work-efficient kernel, GTX Titan model; roots as in the paper (mod n)");
  std::printf("%-22s %8s %10s %10s\n", "Graph", "Root", "rho_v,t", "rho_e,t");
  bench::print_rule();

  for (const auto& family : graph::gen::figure3_family()) {
    const graph::CSRGraph g = family.make(scale, /*seed=*/1);
    for (const graph::VertexId paper_root_id : {0u, 2121u, 6004u}) {
      const graph::VertexId root = bench::paper_root(g, paper_root_id);

      kernels::RunConfig config;
      config.device = gpusim::gtx_titan();
      config.roots = {root};
      config.collect_per_root_stats = true;
      const auto r = kernels::run_work_efficient(g, config);

      std::vector<double> vertex_frontier, edge_frontier, iter_time;
      for (const auto& it : r.per_root.at(0).iterations) {
        vertex_frontier.push_back(static_cast<double>(it.vertex_frontier));
        edge_frontier.push_back(static_cast<double>(it.edge_frontier));
        iter_time.push_back(static_cast<double>(it.cycles));
      }
      const double rho_vt = util::pearson(vertex_frontier, iter_time);
      const double rho_et = util::pearson(edge_frontier, iter_time);
      std::printf("%-22s %8u %10.3f %10.3f\n", family.name.c_str(), paper_root_id, rho_vt,
                  rho_et);
    }
  }

  bench::print_rule();
  std::printf("paper values: rho_v,t in [0.70, 1.00] everywhere; rho_e,t matches\n"
              "rho_v,t except on kron (0.09 / 0.20 / -0.10) where hubs decouple the\n"
              "edge frontier from iteration time.\n");
  return 0;
}
