#include "gpusim/config.hpp"

namespace hbc::gpusim {

DeviceConfig gtx_titan() {
  DeviceConfig cfg;
  cfg.name = "GeForce GTX Titan (Kepler, CC 3.5)";
  cfg.num_sms = 14;
  cfg.threads_per_block = 256;
  cfg.clock_ghz = 0.837;
  cfg.memory_bytes = 6ull << 30;
  cfg.time_scale = 80.0;  // absolute-MTEPS calibration (see DeviceConfig)
  return cfg;
}

DeviceConfig tesla_m2090() {
  DeviceConfig cfg;
  cfg.name = "Tesla M2090 (Fermi, CC 2.0)";
  cfg.num_sms = 16;
  cfg.threads_per_block = 256;
  cfg.clock_ghz = 1.3;
  cfg.memory_bytes = 6ull << 30;
  // Fermi's weaker atomics and cache make scattered traffic relatively
  // more expensive than on Kepler.
  cfg.cost.process_rand = 24;
  cfg.cost.queue_insert = 12;
  cfg.time_scale = 80.0;
  return cfg;
}

DeviceConfig test_device() {
  DeviceConfig cfg;
  cfg.name = "test-device";
  cfg.num_sms = 2;
  cfg.threads_per_block = 32;
  cfg.clock_ghz = 1.0;
  cfg.memory_bytes = 1ull << 20;
  return cfg;
}

}  // namespace hbc::gpusim
