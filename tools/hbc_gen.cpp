// hbc-gen — write a synthetic Table II stand-in graph to a file.
//
//   hbc-gen <family> <scale> <output-file> [seed]
//           [--format metis|edgelist|binary|hbcg|hbcgz]
//           [--updates N] [--update-batch B] [--update-seed S]
//
// Families: rgg delaunay kron road smallworld scalefree web mesh2d.
// The extension picks the default format: .graph/.metis -> METIS,
// .hbc -> binary CSR v1, .hbcg -> mmap-ready v2 container, .hbcgz ->
// varint-compressed v2 (docs/storage.md), anything else -> SNAP edge
// list.
//
// --updates N additionally writes <output-file>.updates: a seeded stream
// of N effective edge updates (inserts of absent edges mixed ~2:1 with
// removes of present ones, tracked against the evolving edge set so every
// line changes the graph) in the hbc-serve --mutate script grammar —
// "g0 + u v" / "g0 - u v" with a "commit" every B lines (default 16).
// The pair composes into a dynamic-graph serving run:
//
//   hbc-gen smallworld 12 g.hbc --updates 64
//   hbc-serve --refresh --mutate g.hbc.updates g.hbc

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <utility>

#include "cli_common.hpp"

namespace {

/// Stream `n` effective updates against `g` into `out`. Deterministic in
/// `seed`; tracks the evolving edge set so no line is a no-op.
void write_update_stream(const hbc::graph::CSRGraph& g, std::size_t n,
                         std::size_t batch, std::uint64_t seed, std::ostream& out) {
  using hbc::graph::VertexId;
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) edges.emplace(u, v);
    }
  }
  out << "# " << n << " seeded edge updates (seed " << seed << "), batch size "
      << batch << " — hbc-serve --mutate grammar\n";
  hbc::util::Xoshiro256 rng(seed);
  const VertexId num_vertices = g.num_vertices();
  std::size_t emitted = 0;
  while (emitted < n) {
    // ~1 remove per 2 inserts keeps the edge count drifting slowly upward
    // instead of densifying or emptying the graph.
    const bool remove = !edges.empty() && rng.next_below(3) == 0;
    if (remove) {
      auto it = edges.begin();
      std::advance(it, static_cast<long>(rng.next_below(edges.size())));
      out << "g0 - " << it->first << " " << it->second << "\n";
      edges.erase(it);
    } else {
      const auto u = static_cast<VertexId>(rng.next_below(num_vertices));
      const auto v = static_cast<VertexId>(rng.next_below(num_vertices));
      if (u == v) continue;
      const auto key = std::minmax(u, v);
      if (!edges.emplace(key.first, key.second).second) continue;  // present
      out << "g0 + " << key.first << " " << key.second << "\n";
    }
    ++emitted;
    if (emitted % batch == 0 || emitted == n) out << "commit\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbc;

  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <family> <scale> <output-file> [seed]"
                 " [--format metis|edgelist|binary|hbcg|hbcgz]\n"
                 "          [--updates N] [--update-batch B] [--update-seed S]\n",
                 argv[0]);
    return 2;
  }

  try {
    const std::string family = argv[1];
    const std::uint32_t scale = cli::parse_u32("<scale>", argv[2]);
    const std::string path = argv[3];
    std::uint64_t seed = 1;
    std::string format;
    std::size_t updates = 0;
    std::size_t update_batch = 16;
    std::uint64_t update_seed = 42;

    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
        format = argv[++i];
      } else if (std::strcmp(argv[i], "--updates") == 0 && i + 1 < argc) {
        updates = cli::parse_size("--updates", argv[++i]);
      } else if (std::strcmp(argv[i], "--update-batch") == 0 && i + 1 < argc) {
        update_batch = std::max<std::size_t>(1, cli::parse_size("--update-batch", argv[++i]));
      } else if (std::strcmp(argv[i], "--update-seed") == 0 && i + 1 < argc) {
        update_seed = cli::parse_u64("--update-seed", argv[++i]);
      } else {
        seed = cli::parse_u64("[seed]", argv[i]);
      }
    }
    if (format.empty()) {
      const auto ends_with = [&](std::string_view suffix) {
        return path.size() >= suffix.size() &&
               path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
      };
      format = (ends_with(".graph") || ends_with(".metis")) ? "metis"
               : ends_with(".hbcgz")                        ? "hbcgz"
               : ends_with(".hbcg")                         ? "hbcg"
               : ends_with(".hbc")                          ? "binary"
                                                            : "edgelist";
    }

    const graph::CSRGraph g = graph::gen::family_by_name(family).make(scale, seed);
    if (format == "hbcg" || format == "hbcgz") {
      graph::io::save_binary_v2(g, path, /*compress=*/format == "hbcgz");
    } else {
      std::ofstream out(path, format == "binary" ? std::ios::binary : std::ios::out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      if (format == "metis") {
        graph::io::write_metis(g, out);
      } else if (format == "edgelist") {
        graph::io::write_edge_list(g, out);
      } else if (format == "binary") {
        graph::io::write_binary(g, out);
      } else {
        std::fprintf(stderr, "unknown format: %s\n", format.c_str());
        return 2;
      }
    }
    std::printf("wrote %s (%s) as %s to %s\n", family.c_str(), g.summary().c_str(),
                format.c_str(), path.c_str());

    if (updates > 0) {
      const std::string updates_path = path + ".updates";
      std::ofstream uout(updates_path);
      if (!uout) {
        std::fprintf(stderr, "cannot write %s\n", updates_path.c_str());
        return 1;
      }
      write_update_stream(g, updates, update_batch, update_seed, uout);
      std::printf("wrote %zu updates (batch %zu, seed %llu) to %s\n", updates,
                  update_batch, static_cast<unsigned long long>(update_seed),
                  updates_path.c_str());
    }
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
