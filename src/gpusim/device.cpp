#include "gpusim/device.hpp"

// Header-only logic today; this TU anchors the library target and keeps a
// home for future out-of-line additions (e.g. trace dumping).

namespace hbc::gpusim {}  // namespace hbc::gpusim
