#pragma once

// Descriptive statistics used throughout the evaluation harness:
// Pearson correlation for Table I, medians for the sampling heuristic
// (Algorithm 5), geometric-mean speedups for Table III.

#include <cstddef>
#include <span>
#include <vector>

namespace hbc::util {

double mean(std::span<const double> xs) noexcept;

/// Population variance (divides by N). Returns 0 for fewer than 2 samples.
double variance(std::span<const double> xs) noexcept;

double stddev(std::span<const double> xs) noexcept;

/// Median of a copy of the input (input untouched). For an even count the
/// lower middle element is returned — this matches the paper's use of
/// keys[n_samps/2] on a sorted array in Algorithm 5.
double median_lower(std::vector<double> xs) noexcept;

/// Conventional median (average of the two middle elements when even).
double median(std::vector<double> xs) noexcept;

/// Pearson correlation coefficient. Returns 0 when either side has zero
/// variance (constant series) or the spans differ in length / are empty.
double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Geometric mean of strictly positive values; 0 if any value <= 0 or empty.
double geometric_mean(std::span<const double> xs) noexcept;

/// Min / max helpers tolerant of empty input (return 0).
double min_value(std::span<const double> xs) noexcept;
double max_value(std::span<const double> xs) noexcept;

/// p-th percentile (p in [0, 100]) of a copy of the input, linearly
/// interpolated between the two nearest order statistics (the common
/// "linear" / numpy default convention). Empty input returns 0; p is
/// clamped to [0, 100]. Used by the serving layer for latency quantiles.
double percentile(std::vector<double> xs, double p) noexcept;

/// Online accumulator for mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hbc::util
