#include <algorithm>
#include <cmath>
#include <memory>

#include "kernels/detail.hpp"
#include "kernels/kernels.hpp"
#include "util/stats.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::VertexId;

namespace {

// Process one root work-efficiently (Algorithms 1–3); returns max depth.
std::uint32_t process_root_we(BCWorkspace& ws, gpusim::BlockContext ctx, VertexId root,
                              std::vector<double>& bc, RunResult& result,
                              const RunConfig& config) {
  PerRootStats stats;
  stats.root = root;

  ws.init_root(root, ctx);
  for (;;) {
    const std::uint64_t before = ctx.cycles();
    const BCWorkspace::LevelStats level = ws.we_forward_level(ctx);
    ++result.metrics.we_levels;
    if (config.collect_per_root_stats) {
      stats.iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                  level.edge_frontier, ctx.cycles() - before,
                                  Mode::WorkEfficient});
    }
    if (ws.q_next_len() == 0) break;
    ws.finish_level(ctx);
  }
  const std::uint32_t max_depth = ws.max_depth();
  stats.max_depth = max_depth;

  for (std::uint32_t dep = max_depth; dep-- > 1;) {
    ws.we_backward_level(ctx, dep);
  }
  ws.accumulate_bc(bc, root, /*use_queue=*/true, ctx);
  if (config.collect_per_root_stats) result.per_root.push_back(std::move(stats));
  return max_depth;
}

// Process one root in guarded edge-parallel mode: levels whose frontier
// holds at least min_frontier vertices run edge-parallel, smaller ones
// (including the opening expansion of the root) revert to work-efficient
// — the per-iteration check described at the end of §IV.C.
std::uint32_t process_root_guarded_ep(BCWorkspace& ws, gpusim::BlockContext ctx,
                                      VertexId root, std::vector<double>& bc,
                                      RunResult& result, const RunConfig& config,
                                      std::vector<Mode>& level_modes) {
  PerRootStats stats;
  stats.root = root;

  ws.init_root(root, ctx);
  level_modes.clear();
  for (;;) {
    ctx.charge_cycles(ctx.cost().sampling_guard);
    const Mode mode = ws.q_curr_len() >= config.sampling.min_frontier
                          ? Mode::EdgeParallel
                          : Mode::WorkEfficient;
    const std::uint64_t before = ctx.cycles();
    const BCWorkspace::LevelStats level =
        mode == Mode::EdgeParallel
            ? ws.ep_forward_level(ctx, ws.current_depth(), /*maintain_queue=*/true)
            : ws.we_forward_level(ctx);
    level_modes.push_back(mode);
    if (mode == Mode::WorkEfficient) {
      ++result.metrics.we_levels;
    } else {
      ++result.metrics.ep_levels;
    }
    if (config.collect_per_root_stats) {
      stats.iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                  level.edge_frontier, ctx.cycles() - before, mode});
    }
    if (ws.q_next_len() == 0) break;
    ws.finish_level(ctx);
  }
  const std::uint32_t max_depth = ws.max_depth();
  stats.max_depth = max_depth;

  for (std::uint32_t dep = max_depth; dep-- > 1;) {
    if (dep < level_modes.size() && level_modes[dep] == Mode::EdgeParallel) {
      ws.ep_backward_level(ctx, dep);
    } else {
      ws.we_backward_level(ctx, dep);
    }
  }
  ws.accumulate_bc(bc, root, /*use_queue=*/true, ctx);
  if (config.collect_per_root_stats) result.per_root.push_back(std::move(stats));
  return max_depth;
}

}  // namespace

// Algorithm 5: spend the first n_samps roots on the (default) work-
// efficient method, record the maximum BFS depth of each, and take the
// median (an outlier-robust estimator of the traversal depth, hence of
// graph structure). If the median is below gamma * log2(n) the graph is
// small-world/scale-free and the remaining roots switch to edge-parallel
// processing — guarded per iteration so trivially small frontiers still
// run work-efficiently. The probe work is useful work: its dependencies
// are already accumulated into the BC vector.
RunResult run_sampling(const CSRGraph& g, const RunConfig& config) {
  util::Timer wall;
  gpusim::Device device(config.device);
  const std::uint32_t num_blocks = config.device.num_sms;

  detail::allocate_graph(device, g, /*needs_edge_sources=*/true);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    device.memory().allocate(BCWorkspace::work_efficient_bytes(g.num_vertices()),
                             "sampling.block_locals");
  }
  device.begin_run(num_blocks);

  const std::vector<VertexId> roots = detail::resolve_roots(g, config);
  RunResult result;
  result.bc.assign(g.num_vertices(), 0.0);

  std::vector<std::unique_ptr<BCWorkspace>> workspaces;
  workspaces.reserve(num_blocks);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    workspaces.push_back(std::make_unique<BCWorkspace>(g));
  }

  const std::size_t n_samps =
      std::min<std::size_t>(config.sampling.n_samps, roots.size());

  // Phase 1: probe roots with the default (work-efficient) method and
  // collect each BFS's maximum depth ("keys" in Algorithm 5).
  std::vector<double> keys;
  keys.reserve(n_samps);
  for (std::size_t i = 0; i < n_samps; ++i) {
    const std::uint32_t block_id = static_cast<std::uint32_t>(i % num_blocks);
    const std::uint64_t before = device.block_cycles(block_id);
    const std::uint32_t depth =
        process_root_we(*workspaces[block_id], device.block(block_id), roots[i],
                        result.bc, result, config);
    keys.push_back(static_cast<double>(depth));
    ++device.counters().roots_processed;
    if (config.collect_root_cycles) {
      result.metrics.per_root_cycles.push_back(device.block_cycles(block_id) - before);
    }
  }

  // Algorithm 5 decision: keys[n_samps/2] < gamma * log2(n). The sort of
  // the key array is charged to block 0 (a single-block bitonic sort).
  if (!keys.empty()) {
    const double k = static_cast<double>(keys.size());
    device.block(0).charge_cycles(
        static_cast<std::uint64_t>(k * std::max(1.0, std::log2(k)) * 4.0));
  }
  const double median = util::median_lower(keys);
  const double threshold =
      config.sampling.gamma * std::log2(std::max<double>(2.0, g.num_vertices()));
  const bool choose_edge_parallel = !keys.empty() && median < threshold;
  result.metrics.sampling_median_depth = median;
  result.metrics.sampling_chose_edge_parallel = choose_edge_parallel;

  // Phase 2: remaining roots with the selected method.
  std::vector<Mode> level_modes;
  for (std::size_t i = n_samps; i < roots.size(); ++i) {
    const std::uint32_t block_id = static_cast<std::uint32_t>(i % num_blocks);
    BCWorkspace& ws = *workspaces[block_id];
    const std::uint64_t before = device.block_cycles(block_id);
    if (choose_edge_parallel) {
      process_root_guarded_ep(ws, device.block(block_id), roots[i], result.bc, result,
                              config, level_modes);
    } else {
      process_root_we(ws, device.block(block_id), roots[i], result.bc, result, config);
    }
    ++device.counters().roots_processed;
    if (config.collect_root_cycles) {
      result.metrics.per_root_cycles.push_back(device.block_cycles(block_id) - before);
    }
  }

  detail::finalize_metrics(result, device, wall);
  return result;
}

}  // namespace hbc::kernels
