#pragma once

// net::Worker — one member of a sharded BC fleet.
//
// A worker is a thin wire adapter around hbc::service::BcService: it
// connects to the coordinator (with exponential backoff, since fleets
// start in any order), introduces itself, materializes the graphs it is
// told to hold — verifying each fingerprint against the coordinator's, so
// a divergent load is refused rather than silently wrong — and serves
// SubmitShard messages by forwarding them to the service and streaming
// results back as they complete. Shard execution is asynchronous: the
// poll loop keeps reading new shards while earlier ones compute, so one
// worker can overlap as many shards as its service has worker threads.
//
// Determinism contract: a Partial-mode shard the local service answered
// *degraded* (strategy substituted by the resilience ladder) is refused —
// sent back as an error — because substituted bits would corrupt the
// coordinator's bitwise reduction. The coordinator retries elsewhere or
// computes the shard itself; either path produces the exact bits.
//
// Lifecycle: Drain finishes in-flight shards, says Goodbye, and returns.
// `die_after_shards` is the chaos hook for the distributed kill tests:
// the worker drops the connection the instant the Nth shard ARRIVES —
// before replying — so the coordinator sees a death with work
// outstanding, exactly the failure the reassignment path exists for.
//
// Self-healing: with `rejoin_attempts` > 0 a lost connection (peer gone,
// poisoned stream, missed heartbeat acks) is not the end — the worker
// reconnects under util::Backoff, re-Hellos, and the coordinator's
// late-joiner replay hands it its graphs back, fingerprint-verified.
// Results for shards submitted in a previous session are still reported
// and absorbed by the coordinator's stale/duplicate checks.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "graph/csr.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"
#include "trace/trace.hpp"

namespace hbc::net {

struct WorkerConfig {
  /// Coordinator endpoint to connect to.
  Endpoint connect;
  std::string name = "worker";
  /// Configuration for the wrapped BcService.
  service::ServiceConfig service;
  /// Materialize a graph from the coordinator's spec (a path, or
  /// "gen:family:scale[:seed]"). Default handles both; tests override it
  /// to return in-memory graphs.
  std::function<graph::CSRGraph(const std::string& spec)> graph_loader;
  /// Connection attempts before giving up (NetError propagates out of
  /// run()); delays follow util::Backoff (exponential, jittered, capped)
  /// from `connect_backoff` up to `max_backoff`.
  std::uint32_t max_connect_attempts = 60;
  std::chrono::milliseconds connect_backoff{50};
  std::chrono::milliseconds max_backoff{2000};
  /// Heartbeat cadence; 0 disables.
  std::chrono::milliseconds heartbeat_interval{1000};
  /// Sessions after the first: when the connection is LOST (coordinator
  /// gone, poisoned stream, missed heartbeat acks) the worker reconnects
  /// and re-Hellos up to this many times. 0 (default) = the pre-rejoin
  /// behaviour: run() returns on the first loss. Clean exits (drain,
  /// goodbye, die_after_shards) never rejoin.
  std::uint32_t rejoin_attempts = 0;
  /// Consecutive heartbeats sent without the previous one being acked
  /// before the worker declares the link dead and reconnects proactively
  /// (its half of the failure detector). Minimum 1.
  std::uint32_t max_heartbeat_misses = 3;
  /// Seeded fault injection on the worker's outbound stream
  /// (stream_id derived from `name`). Null = inert.
  std::shared_ptr<const ChaosPlan> chaos;
  /// Cull a coordinator that keeps a frame incomplete this long (slow
  /// writer); counts as a lost connection. 0 = off.
  std::chrono::milliseconds frame_deadline{0};
  /// Chaos hook: abruptly close the connection when the Nth SubmitShard
  /// arrives (1-based), before computing or replying. 0 = never.
  std::uint32_t die_after_shards = 0;
  /// Non-owning; may be null.
  trace::Tracer* tracer = nullptr;
};

struct WorkerStats {
  std::uint64_t shards_received = 0;
  std::uint64_t shards_served = 0;
  std::uint64_t shards_refused = 0;  // degraded partials sent back as errors
  std::uint64_t graphs_loaded = 0;
  std::uint64_t mutations = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t heartbeat_misses = 0;   // sent while the previous was unacked
  std::uint64_t reconnects = 0;         // rejoin sessions entered
  std::uint64_t quarantine_notices = 0; // coordinator health notices received
};

class Worker {
 public:
  explicit Worker(WorkerConfig config);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Connect (with backoff) and serve until drained, told to die, stopped,
  /// or the coordinator goes away. Throws NetError when every connection
  /// attempt fails.
  void run();

  /// Ask run() to return at its next loop iteration (thread-safe; the
  /// in-process tests run workers on std::thread).
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  const WorkerStats& stats() const noexcept { return stats_; }

 private:
  struct PendingShard {
    std::uint64_t request_id = 0;
    std::uint32_t shard_index = 0;
    std::uint8_t mode = 0;  // wire::ShardMode
    /// Wire version of the SubmitShard frame; the result is encoded at
    /// the same version, so a v1 coordinator never sees v2 bytes.
    std::uint16_t proto = wire::kProtocolVersion;
    service::Ticket ticket;
  };

  /// How one connection's serving loop ended — the rejoin decision.
  enum class SessionEnd : std::uint8_t {
    Clean,     // drained / goodbye / deliberate death / stop: never rejoin
    ConnLost,  // peer gone, poisoned stream, missed acks: rejoin-eligible
  };

  Socket connect_with_backoff();
  SessionEnd run_session();
  void handle_frame(Conn& conn, const wire::Frame& frame, bool& draining, bool& done);
  void poll_tickets(Conn& conn);
  void trace_instant(const char* name, std::uint64_t req, std::uint64_t shard) const;

  WorkerConfig cfg_;
  service::BcService svc_;
  WorkerStats stats_;
  std::vector<PendingShard> pending_;
  std::atomic<bool> stop_{false};
  std::uint32_t shards_seen_ = 0;  // for die_after_shards
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t last_acked_seq_ = 0;    // highest HeartbeatAck seen
  std::uint32_t misses_in_row_ = 0;     // consecutive unacked heartbeats
};

}  // namespace hbc::net
