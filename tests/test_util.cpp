// Unit tests for util: RNG determinism/uniformity, statistics, prefix
// sums, bit vectors, and the thread pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "util/bitvector.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hbc::util;

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool any_differ = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(1);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 a(11);
  Xoshiro256 b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(median_lower({}), 0.0);
  EXPECT_EQ(pearson({}, {}), 0.0);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(Stats, MedianLowerMatchesPaperConvention) {
  // Algorithm 5 takes keys[n_samps/2] of the sorted array.
  EXPECT_DOUBLE_EQ(median_lower({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median_lower({4, 1, 3, 2}), 3.0);  // index 2 of {1,2,3,4}
  EXPECT_DOUBLE_EQ(median_lower({9}), 9.0);
}

TEST(Stats, MedianAveragesMiddlePair) {
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{5, 5, 5};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean(std::vector<double>{1, 4}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean(std::vector<double>{2, 2, 2}), 2.0, 1e-12);
  EXPECT_EQ(geometric_mean(std::vector<double>{1, 0}), 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(PrefixSum, ExclusiveScanInPlace) {
  std::vector<int> xs{3, 1, 4, 1, 5};
  const int total = exclusive_scan_inplace(std::span<int>(xs));
  EXPECT_EQ(total, 14);
  EXPECT_EQ(xs, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(PrefixSum, OffsetsFromCounts) {
  const std::vector<std::uint64_t> counts{2, 0, 3};
  const auto offsets = offsets_from_counts(std::span<const std::uint64_t>(counts));
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 2, 2, 5}));
}

TEST(PrefixSum, InclusiveScanInPlace) {
  std::vector<int> xs{1, 2, 3};
  EXPECT_EQ(inclusive_scan_inplace(std::span<int>(xs)), 6);
  EXPECT_EQ(xs, (std::vector<int>{1, 3, 6}));
}

TEST(BitVector, SetTestClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.count(), 0u);
  bv.set(0);
  bv.set(64);
  bv.set(129);
  EXPECT_TRUE(bv.test(0));
  EXPECT_TRUE(bv.test(64));
  EXPECT_TRUE(bv.test(129));
  EXPECT_FALSE(bv.test(1));
  EXPECT_EQ(bv.count(), 3u);
  bv.clear(64);
  EXPECT_FALSE(bv.test(64));
  EXPECT_EQ(bv.count(), 2u);
}

TEST(BitVector, AssignAllTrueTrimsTail) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.count(), 70u);
  bv.reset();
  EXPECT_EQ(bv.count(), 0u);
}

TEST(BitVector, ByteSizeIsWordGranular) {
  EXPECT_EQ(BitVector(1).byte_size(), 8u);
  EXPECT_EQ(BitVector(64).byte_size(), 8u);
  EXPECT_EQ(BitVector(65).byte_size(), 16u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelRangesPartitionExactly) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_ranges(10, [&](std::size_t, std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(m);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  for (auto [b, e] : ranges) {
    EXPECT_EQ(b, expected_begin);
    covered += e - b;
    expected_begin = e;
  }
  EXPECT_EQ(covered, 10u);
}

TEST(ThreadPool, ParallelChunksPartitionIsThreadCountInvariant) {
  // The chunk decomposition must depend only on (n, num_chunks) — that
  // invariance is what dyn::IncrementalBC's bitwise determinism rests on.
  const auto partition = [](std::size_t threads, std::size_t n, std::size_t chunks) {
    ThreadPool pool(threads);
    std::mutex m;
    std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> out;
    pool.parallel_chunks(n, chunks, [&](std::size_t c, std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lock(m);
      out.emplace_back(c, b, e);
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto one = partition(1, 103, 7);
  const auto four = partition(4, 103, 7);
  EXPECT_EQ(one, four);
  std::size_t expected_begin = 0;
  for (auto [c, b, e] : one) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_LT(b, e);  // empty chunks are skipped, not dispatched
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPool, ParallelChunksSkipsTailBeyondN) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_chunks(3, 8, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);  // chunks 3..7 are empty and never run
  EXPECT_THROW(pool.parallel_chunks(3, 0, [](std::size_t, std::size_t, std::size_t) {}),
               std::invalid_argument);
}

TEST(ThreadPool, SingleThreadDegradesToInline) {
  ThreadPool pool(1);
  int sum = 0;
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

// Service-style usage: worker tasks themselves submit follow-up work (the
// coalescing path re-enqueues twins from inside a running job).
TEST(ThreadPool, SubmitFromInsideRunningTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] {
    ran.fetch_add(1);
    pool.submit([&] { ran.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, ParallelForEmptyAndSingleton) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::size_t seen = 99;
  pool.parallel_for(1, [&](std::size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

TEST(ThreadPool, WaitIdleRacesNewSubmissions) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    pool.wait_idle();  // must observe everything submitted before this call
    EXPECT_GE(done.load(), (round + 1) * 8);
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 160);
}

}  // namespace

// --- util::Backoff: the shared fleet retry-delay policy -------------------

#include "util/backoff.hpp"

namespace {

using hbc::util::Backoff;
using hbc::util::BackoffConfig;

TEST(Backoff, SameSeedSleepsTheSameSchedule) {
  BackoffConfig cfg;
  cfg.initial = std::chrono::milliseconds(10);
  cfg.max = std::chrono::milliseconds(500);
  cfg.seed = 42;
  Backoff a(cfg), b(cfg);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(a.next().count(), b.next().count()) << "attempt " << i;
  }
}

TEST(Backoff, DifferentSeedsDesynchronize) {
  BackoffConfig cfg;
  cfg.initial = std::chrono::milliseconds(100);
  cfg.max = std::chrono::milliseconds(100000);
  cfg.jitter = 0.5;
  cfg.seed = 1;
  Backoff a(cfg);
  cfg.seed = 2;
  Backoff b(cfg);
  int diverged = 0;
  for (int i = 0; i < 12; ++i) {
    if (a.next().count() != b.next().count()) ++diverged;
  }
  EXPECT_GT(diverged, 6);
}

TEST(Backoff, GrowsExponentiallyAndSaturatesAtMax) {
  BackoffConfig cfg;
  cfg.initial = std::chrono::milliseconds(10);
  cfg.max = std::chrono::milliseconds(200);
  cfg.multiplier = 2.0;
  cfg.jitter = 0.0;
  Backoff backoff(cfg);
  EXPECT_EQ(backoff.next().count(), 10);
  EXPECT_EQ(backoff.next().count(), 20);
  EXPECT_EQ(backoff.next().count(), 40);
  EXPECT_EQ(backoff.next().count(), 80);
  EXPECT_EQ(backoff.next().count(), 160);
  EXPECT_EQ(backoff.next().count(), 200);  // clamped
  EXPECT_EQ(backoff.next().count(), 200);  // stays clamped
  EXPECT_EQ(backoff.attempts(), 7u);
}

TEST(Backoff, JitterStaysWithinConfiguredBand) {
  BackoffConfig cfg;
  cfg.initial = std::chrono::milliseconds(1000);
  cfg.max = std::chrono::milliseconds(1000000);
  cfg.multiplier = 1.0;  // isolate the jitter term
  cfg.jitter = 0.25;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    cfg.seed = seed;
    Backoff backoff(cfg);
    for (int i = 0; i < 8; ++i) {
      const auto d = backoff.next().count();
      EXPECT_GE(d, 750) << "seed " << seed;
      EXPECT_LE(d, 1250) << "seed " << seed;
    }
  }
}

TEST(Backoff, PeekDoesNotConsumeAndResetRestarts) {
  BackoffConfig cfg;
  cfg.initial = std::chrono::milliseconds(10);
  cfg.jitter = 0.0;
  Backoff backoff(cfg);
  EXPECT_EQ(backoff.peek().count(), 10);
  EXPECT_EQ(backoff.attempts(), 0u);
  const auto first = backoff.next();
  backoff.next();
  EXPECT_EQ(backoff.attempts(), 2u);
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  EXPECT_EQ(backoff.next().count(), first.count());
}

TEST(Backoff, HostileConfigIsSanitized) {
  BackoffConfig cfg;
  cfg.initial = std::chrono::milliseconds(100);
  cfg.max = std::chrono::milliseconds(10);  // max < initial
  cfg.multiplier = 0.25;                    // < 1
  cfg.jitter = 5.0;                         // >= 1
  Backoff backoff(cfg);
  for (int i = 0; i < 6; ++i) {
    const auto d = backoff.next().count();
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 100);  // never above the (raised) cap
  }
}

}  // namespace
