#pragma once

// Multi-GPU / multi-node BC driver (paper §V.D): the graph is replicated
// on every GPU, BC roots are statically partitioned across GPUs, each GPU
// runs a single-GPU kernel over its subset, per-GPU partial BC vectors are
// summed within a node, and node-level partials are combined with an
// MPI_Reduce. The compute side runs the real kernels (one simulated
// device per GPU); the interconnect side is an analytic latency+bandwidth
// model of the Keeneland-style Infiniband QDR fabric.

#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/config.hpp"
#include "graph/csr.hpp"
#include "kernels/kernels.hpp"

namespace hbc::dist {

struct InterconnectModel {
  double latency_seconds = 5e-6;        // per message (IB QDR class)
  double bandwidth_bytes_per_s = 4e9;   // ~32 Gb/s effective
  double pcie_bandwidth_bytes_per_s = 6e9;  // intra-node GPU->host copy

  /// Tree MPI_Reduce of `bytes` over `nodes` ranks.
  double reduce_seconds(std::uint64_t bytes, std::uint32_t nodes) const noexcept;

  /// Intra-node accumulation: copy each GPU's vector to the host and sum.
  double node_accumulate_seconds(std::uint64_t bytes, std::uint32_t gpus) const noexcept;
};

/// How roots are assigned to GPUs. The paper uses a static even split and
/// notes imbalance is "more probable" on graphs with many components —
/// contiguous chunks of kron roots include runs of free (isolated)
/// vertices, while interleaving mixes costs evenly (see bench_ablation).
enum class RootDistribution {
  Contiguous,  // GPU g gets roots [g*k, (g+1)*k)
  RoundRobin,  // root i goes to GPU i % G
};

struct ClusterConfig {
  std::uint32_t nodes = 1;
  std::uint32_t gpus_per_node = 3;  // KIDS: three Tesla M2090 per node
  RootDistribution distribution = RootDistribution::Contiguous;
  gpusim::DeviceConfig device = gpusim::tesla_m2090();
  InterconnectModel interconnect;
  kernels::Strategy strategy = kernels::Strategy::Sampling;
  kernels::HybridParams hybrid;
  kernels::SamplingParams sampling;
  /// Run node ranks on real threads through dist::World (exercises the
  /// message-passing substrate). Off: deterministic sequential loop.
  bool use_threads = false;
};

struct ClusterResult {
  std::vector<double> bc;
  std::uint64_t total_gpus = 0;
  std::uint64_t roots_processed = 0;

  /// Modelled end-to-end time: max over nodes of (compute + intra-node
  /// accumulation) + inter-node reduction.
  double sim_seconds = 0.0;
  double compute_seconds = 0.0;  // max over GPUs
  double reduce_seconds = 0.0;   // interconnect share
  std::vector<double> per_gpu_seconds;

  gpusim::Counters counters;  // summed over GPUs
};

/// Compute BC over `roots` (empty = all vertices) on the modelled cluster.
ClusterResult run_cluster_bc(const graph::CSRGraph& g, const ClusterConfig& config,
                             const std::vector<graph::VertexId>& roots = {});

struct ClusterTimeBreakdown {
  double sim_seconds = 0.0;
  double compute_seconds = 0.0;
  double reduce_seconds = 0.0;
};

/// Evaluate the cluster time model from per-root simulated cycles (one
/// kernel run with RunConfig::collect_root_cycles supplies them). Roots
/// are partitioned contiguously across GPUs exactly as run_cluster_bc
/// does; GPUs inside a block interleave roots round-robin over num_sms
/// blocks, so a GPU's time is the max over its blocks. Lets a bench sweep
/// node counts without re-running the kernels (Figure 6 / Table IV).
ClusterTimeBreakdown model_cluster_time(std::span<const std::uint64_t> root_cycles,
                                        const ClusterConfig& config,
                                        graph::VertexId num_vertices);

}  // namespace hbc::dist
