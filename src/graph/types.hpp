#pragma once

// Fundamental graph typedefs shared by every subsystem.
//
// Vertices are dense 32-bit ids (the paper's graphs top out at 2^20
// vertices; 32 bits leaves ample headroom). Edge offsets are 64-bit so CSR
// row offsets never overflow even for edge counts past 4B.

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace hbc::graph {

using VertexId = std::uint32_t;
using EdgeOffset = std::uint64_t;

/// Sentinel used for "unvisited" BFS distances, matching the paper's
/// d[v] <- infinity initialisation (Algorithm 1, line 6).
inline constexpr std::uint32_t kInfDistance = std::numeric_limits<std::uint32_t>::max();

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// A raw (directed) edge used during construction and by IO readers.
struct Edge {
  VertexId u;
  VertexId v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

}  // namespace hbc::graph
