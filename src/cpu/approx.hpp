#pragma once

// Approximate betweenness centrality — the two estimator families the
// paper cites when it notes its techniques "can be trivially adjusted for
// approximation" (§V.A):
//
//   * uniform root sampling (Brandes & Pich 2007 [9]): k uniformly random
//     pivots, scores scaled by n/k — an unbiased estimator of exact BC;
//   * adaptive sampling (Bader, Kintali, Madduri, Mihail 2007 [3]): keep
//     sampling pivots until the running score of the vertex of interest
//     exceeds c*n, giving a (proven) good relative estimate for
//     high-centrality vertices with far fewer samples.
//
// Both run on top of any single-source engine; here they drive the serial
// Brandes stage so they can serve as oracles for the GPU-model sampling
// options exposed through core::Options.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace hbc::cpu {

struct UniformApproxOptions {
  std::uint32_t num_pivots = 64;
  std::uint64_t seed = 42;
};

struct UniformApproxResult {
  /// Estimated BC per vertex (scaled by n / pivots).
  std::vector<double> bc;
  std::uint32_t pivots_used = 0;
};

/// Brandes–Pich uniform pivot estimator.
UniformApproxResult approximate_bc(const graph::CSRGraph& g,
                                   const UniformApproxOptions& options = {});

struct AdaptiveApproxOptions {
  /// Stop once the accumulated dependency of the target exceeds c * n.
  double c = 5.0;
  /// Hard cap on pivots (<= n); 0 means n.
  std::uint32_t max_pivots = 0;
  std::uint64_t seed = 42;
};

struct AdaptiveApproxResult {
  /// Estimated BC of the target vertex: n * S_k / k, where S_k is the
  /// accumulated dependency after k pivots.
  double bc_estimate = 0.0;
  std::uint32_t pivots_used = 0;
  /// True if the c*n threshold fired (high-centrality fast path); false
  /// if the pivot cap was reached instead.
  bool threshold_hit = false;
};

/// Bader et al. adaptive estimator for one target vertex.
AdaptiveApproxResult adaptive_bc(const graph::CSRGraph& g, graph::VertexId target,
                                 const AdaptiveApproxOptions& options = {});

}  // namespace hbc::cpu
