# Empty dependencies file for hbc_dist.
# This may be replaced when dependencies are built.
