#pragma once

// Definition-level BC oracle for small graphs: counts sigma_st and
// sigma_st(v) directly from Equation (1) using all-pairs BFS path counts
// and the identity sigma_st(v) = sigma_sv * sigma_vt when
// d(s,v) + d(v,t) == d(s,t). O(n * (n + m)) time, O(n^2) space — intended
// for n up to a few hundred in tests, where it cross-checks Brandes and
// every kernel independently of the dependency-accumulation trick.

#include <vector>

#include "graph/csr.hpp"

namespace hbc::cpu {

/// Exact BC via pairwise path counting (same double-counted convention as
/// brandes(): each ordered pair (s,t), s != t, contributes).
std::vector<double> naive_bc(const graph::CSRGraph& g);

/// Number of shortest s->t paths for all t (sigma row), plus distances.
struct PathCounts {
  std::vector<std::uint32_t> distance;
  std::vector<double> sigma;
};
PathCounts count_paths(const graph::CSRGraph& g, graph::VertexId s);

}  // namespace hbc::cpu
