// Table I reproduction: Pearson correlation of the vertex-frontier size
// (rho_v,t) and edge-frontier size (rho_e,t) with per-iteration execution
// time of the work-efficient method, for three fixed roots on the five
// graph classes of Figure 3.
//
// Paper finding: rho_v,t is high (>= ~0.7) for every root and every graph
// class, while rho_e,t collapses on the scale-free kron graph — which is
// why Algorithm 4 keys its decisions on the vertex frontier it already
// has in the queue.
//
// A second axis grounds the accuracy-contract serving mode
// (docs/serving.md): the stratified ladder's REPORTED relative standard
// error at each rung, next to the MEASURED fidelity against the exact
// answer (relative L1 error and Pearson correlation of the score
// vectors). The reported estimate must track the measured error — that
// is what makes `QueryBudget::accuracy_target` an honest contract.
// Records are emitted to HBC_BENCH_JSON when set.
//
// Knobs: HBC_BENCH_SCALE (Table I graphs, default 13),
//        HBC_BENCH_APPROX_SCALE (budget axis, default 10 — the axis
//        needs exact BC, so it runs on smaller graphs)

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/approx.hpp"
#include "core/bc.hpp"
#include "graph/generators.hpp"
#include "kernels/kernels.hpp"
#include "util/stats.hpp"

namespace {

using namespace hbc;

std::vector<std::string> g_json_records;

void emit_json() {
  const char* path = std::getenv("HBC_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < g_json_records.size(); ++i) {
    out << "  " << g_json_records[i] << (i + 1 < g_json_records.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::ofstream f(path);
  f << out.str();
  std::printf("wrote %zu records to %s\n", g_json_records.size(), path);
}

/// One graph's budget axis: fold the stratified ladder rung by rung and
/// compare each rung's reported error with the measured error against
/// the exact scores. Returns one table row + JSON record per rung.
void budget_axis_for(const std::string& family, const graph::CSRGraph& g) {
  const std::size_t n = g.num_vertices();
  core::Options exact_opt;
  exact_opt.strategy = core::Strategy::WorkEfficient;
  const core::BCResult exact = core::compute(g, exact_opt);

  double exact_l1 = 0.0;
  for (const double s : exact.scores) exact_l1 += s;

  const core::StratumPlan plan;
  core::RefinableEstimate est(n, plan, exact_opt.seed);
  core::Options stratum_opt = exact_opt;
  std::uint32_t rung = 0;
  double accum_seconds = 0.0;
  while (!est.saturated()) {
    stratum_opt.roots = est.next_stratum_roots();
    const core::BCResult r = core::compute(g, stratum_opt);
    est.fold(r.scores, stratum_opt.roots.size());
    accum_seconds += r.time_seconds;
    const bool rung_done = est.strata_folded() >= strata_for_rung(plan, rung);
    if (!rung_done && !est.saturated()) continue;

    const std::vector<double> scores = est.scores(false, false);
    double diff_l1 = 0.0;
    for (std::size_t v = 0; v < n; ++v) diff_l1 += std::abs(scores[v] - exact.scores[v]);
    const double measured = exact_l1 > 0.0 ? diff_l1 / exact_l1 : 0.0;
    const double rho = util::pearson(scores, exact.scores);
    std::printf("%-14s %4u %8zu %12.4f %12.4f %10.4f %10.4f\n", family.c_str(),
                est.rung(), est.roots_used(), est.reported_error(), measured, rho,
                accum_seconds);
    std::ostringstream rec;
    rec << "{\"bench\":\"table1_correlation\",\"axis\":\"budget\",\"graph\":\""
        << family << "\",\"n\":" << n << ",\"rung\":" << est.rung()
        << ",\"roots\":" << est.roots_used() << ",\"reported_stderr\":"
        << est.reported_error() << ",\"measured_rel_l1\":" << measured
        << ",\"pearson\":" << rho << ",\"sim_seconds\":" << accum_seconds << "}";
    g_json_records.push_back(rec.str());
    if (rung_done) ++rung;
  }
}

}  // namespace

int main() {
  using namespace hbc;

  const std::uint32_t scale = bench::env_u32("HBC_BENCH_SCALE", 13);
  const std::uint32_t approx_scale = bench::env_u32("HBC_BENCH_APPROX_SCALE", 10);

  bench::print_header(
      "Table I — correlation of frontier sizes with iteration time",
      "work-efficient kernel, GTX Titan model; roots as in the paper (mod n)");
  std::printf("%-22s %8s %10s %10s\n", "Graph", "Root", "rho_v,t", "rho_e,t");
  bench::print_rule();

  for (const auto& family : graph::gen::figure3_family()) {
    const graph::CSRGraph g = family.make(scale, /*seed=*/1);
    for (const graph::VertexId paper_root_id : {0u, 2121u, 6004u}) {
      const graph::VertexId root = bench::paper_root(g, paper_root_id);

      kernels::RunConfig config;
      config.device = gpusim::gtx_titan();
      config.roots = {root};
      config.collect_per_root_stats = true;
      const auto r = kernels::run_work_efficient(g, config);

      std::vector<double> vertex_frontier, edge_frontier, iter_time;
      for (const auto& it : r.per_root.at(0).iterations) {
        vertex_frontier.push_back(static_cast<double>(it.vertex_frontier));
        edge_frontier.push_back(static_cast<double>(it.edge_frontier));
        iter_time.push_back(static_cast<double>(it.cycles));
      }
      const double rho_vt = util::pearson(vertex_frontier, iter_time);
      const double rho_et = util::pearson(edge_frontier, iter_time);
      std::printf("%-22s %8u %10.3f %10.3f\n", family.name.c_str(), paper_root_id, rho_vt,
                  rho_et);
    }
  }

  bench::print_rule();
  std::printf("paper values: rho_v,t in [0.70, 1.00] everywhere; rho_e,t matches\n"
              "rho_v,t except on kron (0.09 / 0.20 / -0.10) where hubs decouple the\n"
              "edge frontier from iteration time.\n");

  bench::print_header(
      "Budget axis — reported error vs measured fidelity per rung",
      "stratified ladder at scale " + std::to_string(approx_scale) +
          "; reported rel-stderr must track measured rel-L1 vs exact");
  std::printf("%-14s %4s %8s %12s %12s %10s %10s\n", "Graph", "rung", "roots",
              "reported", "measured", "pearson", "sim-s");
  bench::print_rule();
  for (const auto& family : graph::gen::figure3_family()) {
    const graph::CSRGraph g = family.make(approx_scale, /*seed=*/1);
    budget_axis_for(family.name, g);
  }
  bench::print_rule();
  std::printf("the reported column is the estimator's accuracy-contract metric\n"
              "(running-min inter-stratum stderr); it should shrink with the\n"
              "measured error and hit exactly 0 at saturation, where pearson=1.\n");

  emit_json();
  return 0;
}
