#include "graph/csr.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hbc::graph {

CSRGraph::CSRGraph(std::vector<EdgeOffset> row_offsets, std::vector<VertexId> col_indices,
                   bool undirected)
    : row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      undirected_(undirected) {
  if (row_offsets_.empty()) {
    throw std::invalid_argument("CSRGraph: row_offsets must have at least one entry");
  }
  if (row_offsets_.front() != 0) {
    throw std::invalid_argument("CSRGraph: row_offsets must start at 0");
  }
  if (row_offsets_.back() != col_indices_.size()) {
    throw std::invalid_argument("CSRGraph: row_offsets must end at col_indices.size()");
  }
  if (!std::is_sorted(row_offsets_.begin(), row_offsets_.end())) {
    throw std::invalid_argument("CSRGraph: row_offsets must be non-decreasing");
  }
  const VertexId n = num_vertices();
  for (VertexId c : col_indices_) {
    if (c >= n) throw std::invalid_argument("CSRGraph: column index out of range");
  }

  edge_sources_.resize(col_indices_.size());
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeOffset e = row_offsets_[v]; e < row_offsets_[v + 1]; ++e) {
      edge_sources_[e] = v;
    }
  }
}

VertexId CSRGraph::max_degree() const noexcept {
  VertexId best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    best = std::max<VertexId>(best, static_cast<VertexId>(degree(v)));
  }
  return best;
}

double CSRGraph::average_degree() const noexcept {
  const VertexId n = num_vertices();
  if (n == 0) return 0.0;
  return static_cast<double>(num_directed_edges()) / static_cast<double>(n);
}

std::size_t CSRGraph::storage_bytes() const noexcept {
  return row_offsets_.size() * sizeof(EdgeOffset) +
         col_indices_.size() * sizeof(VertexId) +
         edge_sources_.size() * sizeof(VertexId);
}

std::uint64_t CSRGraph::fingerprint() const noexcept {
  constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  const auto mix = [](std::uint64_t& h, const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
  };
  std::uint64_t h = kFnvOffset;
  const std::uint64_t n = num_vertices();
  const std::uint64_t m = num_directed_edges();
  const std::uint64_t undirected = undirected_ ? 1 : 0;
  mix(h, &n, sizeof(n));
  mix(h, &m, sizeof(m));
  mix(h, &undirected, sizeof(undirected));
  mix(h, row_offsets_.data(), row_offsets_.size() * sizeof(EdgeOffset));
  mix(h, col_indices_.data(), col_indices_.size() * sizeof(VertexId));
  return h;
}

std::string CSRGraph::summary() const {
  std::ostringstream os;
  os << "n=" << num_vertices() << " m=" << num_undirected_edges()
     << (undirected_ ? " (undirected)" : " (directed)")
     << " max_deg=" << max_degree();
  return os.str();
}

}  // namespace hbc::graph
