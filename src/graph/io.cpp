#include "graph/io.hpp"

#include <charconv>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "graph/builder.hpp"
#include "graph/storage/compressed.hpp"
#include "graph/storage/mmap_csr.hpp"
#include "graph/storage/varint.hpp"
#include "util/mmap_file.hpp"

namespace hbc::graph::io {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "parse error at line " << line << ": " << what;
  throw ParseError(os.str());
}

bool is_comment_or_blank(const std::string& line, char comment) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == comment;
  }
  return true;  // blank
}

/// Parse whitespace-separated unsigned integers from `line` into `out`.
/// Returns false on any non-numeric token.
bool parse_uints(const std::string& line, std::vector<std::uint64_t>& out) {
  out.clear();
  const char* p = line.data();
  const char* end = p + line.size();
  while (p < end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p >= end) break;
    std::uint64_t value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc()) return false;
    out.push_back(value);
    p = next;
  }
  return true;
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  return in;
}

}  // namespace

CSRGraph read_auto(const std::string& path) {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  if (ends_with(".graph") || ends_with(".metis")) return read_metis_file(path);
  if (ends_with(".mtx")) return read_matrix_market_file(path);
  if (ends_with(".hbcg") || ends_with(".hbcgz")) return open_mapped(path);
  if (ends_with(".hbc")) return read_binary_file(path);
  return read_edge_list_file(path);
}

CSRGraph read_metis(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  std::vector<std::uint64_t> nums;

  // Header: n m [fmt [ncon]]
  std::uint64_t n = 0, m = 0, fmt = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '%')) continue;
    if (!parse_uints(line, nums) || nums.size() < 2) fail(lineno, "bad METIS header");
    n = nums[0];
    m = nums[1];
    if (nums.size() >= 3) fmt = nums[2];
    break;
  }
  if (fmt != 0 && fmt != 100) {
    // 1/11/10 encode vertex/edge weights; BC is unweighted, so reject
    // rather than silently misreading weights as neighbors.
    fail(lineno, "weighted METIS formats are not supported (fmt must be 0)");
  }

  GraphBuilder builder(static_cast<VertexId>(n));
  std::uint64_t vertex = 0;
  while (vertex < n && std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '%') && line.find('%') != std::string::npos) continue;
    if (!parse_uints(line, nums)) fail(lineno, "bad adjacency line");
    for (std::uint64_t neighbor : nums) {
      if (neighbor == 0 || neighbor > n) fail(lineno, "neighbor id out of range");
      builder.add_edge(static_cast<VertexId>(vertex), static_cast<VertexId>(neighbor - 1));
    }
    ++vertex;
  }
  if (vertex != n) fail(lineno, "fewer adjacency lines than vertices");

  CSRGraph g = builder.build();
  if (g.num_undirected_edges() != m) {
    // Informational only: many published .graph files count edges loosely
    // (self loops / duplicates); the builder canonicalizes.
  }
  return g;
}

CSRGraph read_metis_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_metis(in);
}

CSRGraph read_matrix_market(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;

  if (!std::getline(in, line)) throw ParseError("empty MatrixMarket stream");
  ++lineno;
  if (line.rfind("%%MatrixMarket", 0) != 0) fail(lineno, "missing MatrixMarket banner");
  {
    std::istringstream banner(line);
    std::string tag, object, format, field, symmetry;
    banner >> tag >> object >> format >> field >> symmetry;
    if (object != "matrix" || format != "coordinate") {
      fail(lineno, "only coordinate matrices are supported");
    }
  }

  std::vector<std::uint64_t> nums;
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '%')) continue;
    std::istringstream dims(line);
    if (!(dims >> rows >> cols >> nnz)) fail(lineno, "bad size line");
    break;
  }
  const std::uint64_t n = std::max(rows, cols);

  GraphBuilder builder(static_cast<VertexId>(n));
  std::uint64_t read = 0;
  while (read < nnz && std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '%')) continue;
    // Entries may carry a value column; take the first two fields. The
    // value can be a float, so parse just the leading integers.
    if (!parse_uints(line, nums)) {
      // Retry: grab the first two tokens via stream extraction so float
      // values don't break parsing.
      std::istringstream entry(line);
      std::uint64_t u = 0, v = 0;
      if (!(entry >> u >> v)) fail(lineno, "bad entry line");
      nums.assign({u, v});
    }
    if (nums.size() < 2) fail(lineno, "entry needs two indices");
    const std::uint64_t u = nums[0], v = nums[1];
    if (u == 0 || v == 0 || u > n || v > n) fail(lineno, "index out of range");
    builder.add_edge(static_cast<VertexId>(u - 1), static_cast<VertexId>(v - 1));
    ++read;
  }
  if (read != nnz) fail(lineno, "fewer entries than the size line declared");
  return builder.build();
}

CSRGraph read_matrix_market_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_matrix_market(in);
}

CSRGraph read_edge_list(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  std::vector<std::uint64_t> nums;

  std::unordered_map<std::uint64_t, VertexId> remap;
  EdgeList edges;
  auto intern = [&](std::uint64_t raw) {
    auto [it, inserted] = remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '#')) continue;
    if (!parse_uints(line, nums) || nums.size() < 2) fail(lineno, "expected 'u v'");
    edges.push_back({intern(nums[0]), intern(nums[1])});
  }

  GraphBuilder builder(static_cast<VertexId>(remap.size()));
  builder.add_edges(edges);
  return builder.build();
}

CSRGraph read_edge_list_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_edge_list(in);
}

void write_metis(const CSRGraph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_undirected_edges() << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    for (VertexId w : g.neighbors(v)) {
      if (!first) out << ' ';
      out << (w + 1);
      first = false;
    }
    out << '\n';
  }
}

void write_edge_list(const CSRGraph& g, std::ostream& out) {
  out << "# hybrid_bc edge list: " << g.num_vertices() << " vertices, "
      << g.num_undirected_edges() << " undirected edges\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      if (v <= w || !g.undirected()) out << v << '\t' << w << '\n';
    }
  }
}

namespace {

constexpr char kBinaryMagic[8] = {'H', 'B', 'C', 'G', 'R', 'A', 'P', 'H'};
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

void write_binary(const CSRGraph& g, std::ostream& out) {
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  write_pod(out, kBinaryVersion);
  write_pod(out, static_cast<std::uint32_t>(g.undirected() ? 1 : 0));
  write_pod(out, static_cast<std::uint64_t>(g.num_vertices()));
  write_pod(out, static_cast<std::uint64_t>(g.num_directed_edges()));
  const auto offsets = g.row_offsets();
  const auto cols = g.col_indices();
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(EdgeOffset)));
  out.write(reinterpret_cast<const char*>(cols.data()),
            static_cast<std::streamsize>(cols.size() * sizeof(VertexId)));
}

CSRGraph read_binary(std::istream& in) {
  char magic[sizeof(kBinaryMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    throw ParseError("binary CSR: bad magic");
  }
  std::uint32_t version = 0, undirected_flag = 0;
  std::uint64_t n = 0, m = 0;
  if (!read_pod(in, version) || version != kBinaryVersion) {
    throw ParseError("binary CSR: unsupported version");
  }
  if (!read_pod(in, undirected_flag) || !read_pod(in, n) || !read_pod(in, m)) {
    throw ParseError("binary CSR: truncated header");
  }

  std::vector<EdgeOffset> offsets(n + 1);
  std::vector<VertexId> cols(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeOffset)));
  in.read(reinterpret_cast<char*>(cols.data()),
          static_cast<std::streamsize>(cols.size() * sizeof(VertexId)));
  if (!in) throw ParseError("binary CSR: truncated arrays");
  try {
    return CSRGraph(std::move(offsets), std::move(cols), undirected_flag != 0);
  } catch (const std::invalid_argument& e) {
    throw ParseError(std::string("binary CSR: invalid structure: ") + e.what());
  }
}

CSRGraph read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open file: " + path);
  return read_binary(in);
}

void write_binary_file(const CSRGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot write file: " + path);
  write_binary(g, out);
}

namespace {

constexpr std::uint64_t align_up(std::uint64_t offset) {
  return (offset + storage::kSectionAlign - 1) & ~(storage::kSectionAlign - 1);
}

void pad_to(std::ostream& out, std::uint64_t current, std::uint64_t target) {
  static constexpr char kZeros[storage::kSectionAlign] = {};
  out.write(kZeros, static_cast<std::streamsize>(target - current));
}

}  // namespace

void save_binary_v2(const CSRGraph& g, const std::string& path, bool compress) {
  const auto rows = g.row_offsets();
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_directed_edges();
  const std::uint64_t row_bytes = (n + 1) * sizeof(EdgeOffset);

  // Encode (or reuse) the compressed adjacency before laying out sections.
  std::vector<std::uint8_t> encoded;
  std::vector<EdgeOffset> aux;
  std::span<const std::uint8_t> enc_span;
  std::span<const EdgeOffset> aux_span;
  if (compress) {
    if (const auto* cs =
            dynamic_cast<const storage::CompressedStorage*>(g.storage().get())) {
      enc_span = cs->encoded();
      aux_span = cs->byte_offsets();
    } else {
      aux.reserve(rows.size());
      aux.push_back(0);
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        storage::encode_adjacency(encoded, v, g.neighbors(v));
        aux.push_back(encoded.size());
      }
      enc_span = encoded;
      aux_span = aux;
    }
  }

  storage::FileHeader h;
  h.flags = (compress ? storage::kFlagCompressed : 0u) |
            (g.undirected() ? storage::kFlagUndirected : 0u);
  h.num_vertices = n;
  h.num_edges = m;
  h.fingerprint = g.fingerprint();
  h.row_section = align_up(storage::kHeaderBytes);
  if (compress) {
    h.aux_section = align_up(h.row_section + row_bytes);
    h.adj_section = align_up(h.aux_section + row_bytes);
    h.adj_bytes = enc_span.size();
  } else {
    h.aux_section = 0;
    h.adj_section = align_up(h.row_section + row_bytes);
    h.adj_bytes = m * sizeof(VertexId);
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot write file: " + path);

  std::uint8_t header[storage::kHeaderBytes];
  h.serialize(header);
  out.write(reinterpret_cast<const char*>(header), storage::kHeaderBytes);
  pad_to(out, storage::kHeaderBytes, h.row_section);
  out.write(reinterpret_cast<const char*>(rows.data()),
            static_cast<std::streamsize>(row_bytes));
  if (compress) {
    pad_to(out, h.row_section + row_bytes, h.aux_section);
    out.write(reinterpret_cast<const char*>(aux_span.data()),
              static_cast<std::streamsize>(aux_span.size() * sizeof(EdgeOffset)));
    pad_to(out, h.aux_section + row_bytes, h.adj_section);
    out.write(reinterpret_cast<const char*>(enc_span.data()),
              static_cast<std::streamsize>(enc_span.size()));
  } else {
    pad_to(out, h.row_section + row_bytes, h.adj_section);
    const auto cols = g.col_indices();
    out.write(reinterpret_cast<const char*>(cols.data()),
              static_cast<std::streamsize>(cols.size() * sizeof(VertexId)));
  }
  out.flush();
  if (!out) throw ParseError("short write to file: " + path);
}

CSRGraph open_mapped(const std::string& path, const OpenOptions& options) {
  std::shared_ptr<const util::MmapFile> file;
  try {
    file = std::make_shared<util::MmapFile>(path);
  } catch (const std::runtime_error& e) {
    throw storage::FormatError(e.what());
  }
  const storage::FileHeader h =
      storage::FileHeader::parse(file->data(), file->size(), path);

  std::shared_ptr<const storage::Storage> backing;
  if (h.compressed()) {
    backing = std::make_shared<storage::CompressedStorage>(std::move(file), h,
                                                           options.validate);
  } else {
    backing = std::make_shared<storage::MappedStorage>(std::move(file), h,
                                                       options.validate);
  }

  if (options.verify_fingerprint) {
    // Recomputed from the mapped data — the header's claim is checked,
    // never trusted. This is the value the net fleet compares per worker.
    const std::uint64_t computed = backing->fingerprint();
    if (computed != h.fingerprint) {
      throw storage::FormatError(
          "hbcg '" + path + "': fingerprint mismatch (header says " +
          std::to_string(h.fingerprint) + ", data hashes to " +
          std::to_string(computed) + ")");
    }
  }
  return CSRGraph(std::move(backing));
}

void write_matrix_market(const CSRGraph& g, std::ostream& out) {
  const bool symmetric = g.undirected();
  out << "%%MatrixMarket matrix coordinate pattern "
      << (symmetric ? "symmetric" : "general") << '\n';
  out << "% written by hybrid_bc\n";
  const std::uint64_t entries =
      symmetric ? g.num_undirected_edges() : g.num_directed_edges();
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << entries << '\n';
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      // Symmetric format stores the lower triangle: row >= column.
      if (!symmetric || u >= v) out << (u + 1) << ' ' << (v + 1) << '\n';
    }
  }
}

}  // namespace hbc::graph::io
