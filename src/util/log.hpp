#pragma once

// Minimal leveled logger. Single-process, thread-safe line output.
//
// The library never logs at Info or below on its own hot paths; benches and
// examples use Info for progress, tests run with the default (Warn) so ctest
// output stays clean.

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace hbc::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Unknown strings leave the level unchanged and return false.
bool set_log_level(std::string_view name) noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& message);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace hbc::util

// Usage: HBC_LOG_INFO << "built graph with " << n << " vertices";
#define HBC_LOG_AT(lvl)                                     \
  if (static_cast<int>(lvl) < static_cast<int>(::hbc::util::log_level())) { \
  } else                                                    \
    ::hbc::util::detail::LogStream(lvl)

#define HBC_LOG_TRACE HBC_LOG_AT(::hbc::util::LogLevel::Trace)
#define HBC_LOG_DEBUG HBC_LOG_AT(::hbc::util::LogLevel::Debug)
#define HBC_LOG_INFO HBC_LOG_AT(::hbc::util::LogLevel::Info)
#define HBC_LOG_WARN HBC_LOG_AT(::hbc::util::LogLevel::Warn)
#define HBC_LOG_ERROR HBC_LOG_AT(::hbc::util::LogLevel::Error)
