# Empty dependencies file for hbc_graph.
# This may be replaced when dependencies are built.
