file(REMOVE_RECURSE
  "CMakeFiles/hbc_dist.dir/dist/cluster.cpp.o"
  "CMakeFiles/hbc_dist.dir/dist/cluster.cpp.o.d"
  "CMakeFiles/hbc_dist.dir/dist/comm.cpp.o"
  "CMakeFiles/hbc_dist.dir/dist/comm.cpp.o.d"
  "libhbc_dist.a"
  "libhbc_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
