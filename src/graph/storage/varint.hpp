#pragma once

// LEB128 varint + zigzag delta coding for adjacency lists.
//
// The compressed .hbcg adjacency section stores each vertex's neighbor
// list as deltas: the first neighbor is encoded as zigzag(first - v)
// (gap from the owning vertex — small for the local edges that dominate
// real graphs), and each subsequent neighbor as zigzag(cur - prev).
// Deltas may be negative (neighbor lists are stored in their original
// order, NOT re-sorted, so decode reproduces the exact iteration order
// the heap CSR has — a requirement for bitwise-identical BC scores).
//
// Decode is defensive: every get_* takes an end pointer and returns
// nullptr on truncation or overlong encodings (> 10 bytes), so corrupt
// files surface as typed errors, never out-of-bounds reads. Same
// discipline as net::wire.

#include <cstdint>
#include <vector>

namespace hbc::graph::storage {

inline constexpr int kMaxVarintBytes = 10;  // ceil(64 / 7)

/// Append the LEB128 encoding of `value` to `out`.
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Decode one LEB128 varint from [p, end). On success stores the value
/// and returns the position one past the last byte consumed; on
/// truncation or an overlong (> 10 byte) encoding returns nullptr.
inline const std::uint8_t* get_u64(const std::uint8_t* p, const std::uint8_t* end,
                                   std::uint64_t& value) {
  std::uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (p == end) return nullptr;
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject encodings whose final byte carries bits beyond 64.
      if (i == kMaxVarintBytes - 1 && (byte & 0x7e) != 0) return nullptr;
      value = v;
      return p;
    }
    shift += 7;
  }
  return nullptr;  // continuation bit still set after 10 bytes
}

/// Zigzag map: signed delta -> unsigned varint payload (small magnitudes,
/// either sign, encode short).
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Encode one vertex's neighbor list (order preserved) into `out`.
/// `v` is the owning vertex: the first gap is relative to it.
template <class NeighborRange>
inline void encode_adjacency(std::vector<std::uint8_t>& out, std::uint32_t v,
                             const NeighborRange& neighbors) {
  std::int64_t prev = static_cast<std::int64_t>(v);
  bool first = true;
  for (const std::uint32_t u : neighbors) {
    const std::int64_t cur = static_cast<std::int64_t>(u);
    put_u64(out, zigzag(cur - prev));
    prev = cur;
    first = false;
  }
  (void)first;  // degree-0 vertices legitimately emit nothing
}

/// Decode `degree` neighbors of vertex `v` from [p, end) into `out`
/// (appended). Returns the position after the last byte consumed, or
/// nullptr if the stream is truncated, overlong, or decodes a value
/// outside [0, num_vertices).
inline const std::uint8_t* decode_adjacency(const std::uint8_t* p,
                                            const std::uint8_t* end,
                                            std::uint32_t v, std::uint64_t degree,
                                            std::uint32_t num_vertices,
                                            std::uint32_t* out) {
  std::int64_t prev = static_cast<std::int64_t>(v);
  for (std::uint64_t i = 0; i < degree; ++i) {
    std::uint64_t raw = 0;
    p = get_u64(p, end, raw);
    if (p == nullptr) return nullptr;
    const std::int64_t cur = prev + unzigzag(raw);
    if (cur < 0 || cur >= static_cast<std::int64_t>(num_vertices)) return nullptr;
    out[i] = static_cast<std::uint32_t>(cur);
    prev = cur;
  }
  return p;
}

}  // namespace hbc::graph::storage
