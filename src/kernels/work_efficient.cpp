#include <memory>

#include "kernels/detail.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;
using graph::VertexId;

// The paper's work-efficient kernel (Algorithms 1–3): explicit frontier
// queues in the forward stage, the S/ends level index feeding a
// successor-based (atomic-free, predecessor-free) dependency stage.
// Local storage is O(n) per block — the scalability win over both prior
// implementations.
RunResult run_work_efficient(const CSRGraph& g, const RunConfig& config) {
  util::Timer wall;
  gpusim::Device device(config.device);
  const std::uint32_t num_blocks = config.device.num_sms;

  detail::allocate_graph(device, g, /*needs_edge_sources=*/false);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    device.memory().allocate(BCWorkspace::work_efficient_bytes(g.num_vertices()),
                             "we.block_locals");
    if (config.use_predecessor_bitmap) {
      device.memory().allocate(
          BCWorkspace::predecessor_bitmap_bytes(g.num_directed_edges()),
          "we.predecessor_bitmap");
    }
  }
  device.begin_run(num_blocks);

  const std::vector<VertexId> roots = detail::resolve_roots(g, config);
  RunResult result;
  result.bc.assign(g.num_vertices(), 0.0);

  std::vector<std::unique_ptr<BCWorkspace>> workspaces;
  workspaces.reserve(num_blocks);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    workspaces.push_back(std::make_unique<BCWorkspace>(g));
  }

  for (std::size_t i = 0; i < roots.size(); ++i) {
    const VertexId root = roots[i];
    const std::uint32_t block_id = static_cast<std::uint32_t>(i % num_blocks);
    auto ctx = device.block(block_id);
    BCWorkspace& ws = *workspaces[block_id];
    const std::uint64_t root_start_cycles = ctx.cycles();

    PerRootStats stats;
    stats.root = root;

    ws.init_root(root, ctx);

    // Stage 1 (Algorithm 2).
    for (;;) {
      const std::uint64_t before = ctx.cycles();
      const BCWorkspace::LevelStats level =
          ws.we_forward_level(ctx, config.use_predecessor_bitmap);
      if (config.collect_per_root_stats) {
        stats.iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                    level.edge_frontier, ctx.cycles() - before,
                                    Mode::WorkEfficient});
      }
      ++result.metrics.we_levels;
      if (ws.q_next_len() == 0) break;
      ws.finish_level(ctx);
    }
    const std::uint32_t max_depth = ws.max_depth();
    stats.max_depth = max_depth;

    // Stage 2 (Algorithm 3): depth = d[S[S_len-1]] - 1 down to 1.
    for (std::uint32_t dep = max_depth; dep-- > 1;) {
      if (config.use_predecessor_bitmap) {
        ws.we_backward_level_pred(ctx, dep);
      } else {
        ws.we_backward_level(ctx, dep);
      }
    }

    ws.accumulate_bc(result.bc, root, /*use_queue=*/true, ctx);
    ++device.counters().roots_processed;
    if (config.collect_root_cycles) {
      result.metrics.per_root_cycles.push_back(ctx.cycles() - root_start_cycles);
    }
    if (config.collect_per_root_stats) result.per_root.push_back(std::move(stats));
  }

  detail::finalize_metrics(result, device, wall);
  return result;
}

}  // namespace hbc::kernels
