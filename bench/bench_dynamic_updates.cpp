// Dynamic updates: incremental-BC throughput and affected-fraction vs
// batch size (docs/dynamic.md).
//
// Builds a scale-free graph, pays one full deterministic Brandes sweep to
// seed dyn::IncrementalBC, then applies seeded batches of effective edge
// updates (inserts of absent edges mixed ~2:1 with removes of present
// ones) at increasing batch sizes. Each row reports the batch commit wall
// time, updates/sec, the affected-source fraction the level test
// identified, how many sources were actually recomputed, and the speedup
// over recomputing from scratch (the measured epoch-0 sweep). The
// affected fraction should grow with batch size — each extra edge unions
// its affected set in — which is exactly the work cliff the churn
// threshold guards.
//
// Environment knobs (bench/common.hpp conventions):
//   HBC_BENCH_SCALE    log2 vertices of the scale-free graph (default 16,
//                      the reproduction's dynamic-update benchmark size)
//   HBC_BENCH_BATCHES  comma-separated batch sizes to sweep (default
//                      "1,8,64,256")
//   HBC_BENCH_UPDATE_MODE  "random" (default): uniform insert/remove mix —
//                      on a low-diameter graph the union of per-edge
//                      affected sets reaches ~100% fast, the churn-fallback
//                      regime. "twin": an untimed setup batch first rewires
//                      disjoint pairs of min-degree leaves into twins
//                      (identical adjacency); the timed batches then insert
//                      the twin chords. Such a chord is same-level from
//                      every other source in both graphs, so it affects
//                      exactly its two endpoints — the prune-friendly
//                      regime the level test exists for.
//   HBC_BENCH_VERIFY   when non-empty, after every batch compare the
//                      engine's scores against a from-scratch cpu::brandes
//                      run at 1e-7 relative tolerance and require that the
//                      incremental path recomputed strictly fewer than all
//                      sources; exit 1 on any miss. (Expensive: one exact
//                      serial Brandes per batch.)
//   HBC_BENCH_JSON     also write machine-readable records to this path

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "cpu/brandes.hpp"
#include "dyn/incremental_bc.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace hbc;
using graph::VertexId;

std::vector<std::size_t> batch_sizes_from_env() {
  const char* raw = std::getenv("HBC_BENCH_BATCHES");
  const std::string spec = (raw != nullptr && *raw != '\0') ? raw : "1,8,64,256";
  std::vector<std::size_t> sizes;
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    const unsigned long v = std::strtoul(field.c_str(), nullptr, 10);
    if (v > 0) sizes.push_back(static_cast<std::size_t>(v));
  }
  if (sizes.empty()) sizes = {1, 8, 64, 256};
  return sizes;
}

/// `n` effective updates against the engine's current graph, tracked in
/// `edges` (the normalized u < v edge set) so every update changes the
/// graph and the reported batch == applied set.
dyn::UpdateBatch next_batch(std::set<std::pair<VertexId, VertexId>>& edges,
                            VertexId num_vertices, std::size_t n,
                            util::Xoshiro256& rng) {
  dyn::UpdateBatch batch;
  while (batch.size() < n) {
    const bool remove = !edges.empty() && rng.next_below(3) == 0;
    if (remove) {
      auto it = edges.begin();
      std::advance(it, static_cast<long>(rng.next_below(edges.size())));
      batch.remove(it->first, it->second);
      edges.erase(it);
    } else {
      const auto u = static_cast<VertexId>(rng.next_below(num_vertices));
      const auto v = static_cast<VertexId>(rng.next_below(num_vertices));
      if (u == v) continue;
      const auto key = std::minmax(u, v);
      if (!edges.emplace(key.first, key.second).second) continue;
      batch.insert(key.first, key.second);
    }
  }
  return batch;
}

struct TwinPlan {
  dyn::UpdateBatch setup;                            // rewires b_i onto N(a_i)
  std::vector<std::pair<VertexId, VertexId>> pairs;  // the plantable chords
};

/// Plan to rewire up to `want` disjoint pairs (a, b) of min-degree leaves
/// so each pair ends up with identical adjacency: remove b's edges, insert
/// b–x for every x in N(a). Identical neighborhoods force
/// d(s,a) == d(s,b) for every other source s in both the before and after
/// graphs, so the later {a, b} chord's affected set is exactly {a, b}.
/// Pairs are chosen so no vertex of one pair is touched by another pair's
/// rewiring (each pair's ops touch only b ∪ N(a) ∪ N(b), and members'
/// neighborhoods are kept clear of reserved vertices — adjacency is
/// symmetric, so that check covers both directions).
TwinPlan plant_twins(const graph::CSRGraph& g, std::size_t want) {
  std::size_t min_deg = g.num_vertices();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t d = g.neighbors(v).size();
    if (d > 0 && d < min_deg) min_deg = d;
  }

  TwinPlan plan;
  std::vector<char> reserved(g.num_vertices(), 0);
  const auto clear_of_reserved = [&](VertexId a, VertexId b) {
    for (const VertexId x : g.neighbors(a)) {
      if (reserved[x] != 0 || x == b) return false;
    }
    for (const VertexId x : g.neighbors(b)) {
      if (reserved[x] != 0 || x == a) return false;
    }
    return true;
  };

  std::vector<VertexId> unpaired;
  for (VertexId v = 0; v < g.num_vertices() && plan.pairs.size() < want; ++v) {
    if (g.neighbors(v).size() != min_deg || reserved[v] != 0) continue;
    bool paired = false;
    for (std::size_t i = 0; i < unpaired.size() && !paired; ++i) {
      const VertexId a = unpaired[i];
      if (reserved[a] != 0 || !clear_of_reserved(a, v)) continue;
      reserved[a] = reserved[v] = 1;
      for (const VertexId x : g.neighbors(v)) plan.setup.remove(v, x);
      for (const VertexId x : g.neighbors(a)) plan.setup.insert(v, x);
      plan.pairs.emplace_back(std::min(a, v), std::max(a, v));
      unpaired.erase(unpaired.begin() + static_cast<long>(i));
      paired = true;
    }
    if (!paired) unpaired.push_back(v);
  }
  return plan;
}

bool verify_against_brandes(const dyn::IncrementalBC& engine) {
  const std::vector<double> fresh = cpu::brandes(engine.graph()).bc;
  const std::vector<double>& got = engine.scores();
  if (got.size() != fresh.size()) return false;
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    const double tol = 1e-7 * std::max(1.0, std::abs(fresh[v]));
    if (std::abs(got[v] - fresh[v]) > tol) {
      std::printf("  verify MISMATCH at vertex %zu: incremental %.12g vs fresh %.12g\n",
                  v, got[v], fresh[v]);
      return false;
    }
  }
  return true;
}

std::vector<std::string> g_json_records;

void emit_json() {
  const char* path = std::getenv("HBC_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < g_json_records.size(); ++i) {
    out << "  " << g_json_records[i] << (i + 1 < g_json_records.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::ofstream f(path);
  f << out.str();
  std::printf("wrote %zu records to %s\n", g_json_records.size(), path);
}

}  // namespace

int main() {
  const std::uint32_t scale = bench::env_u32("HBC_BENCH_SCALE", 16);
  const std::vector<std::size_t> batch_sizes = batch_sizes_from_env();
  const char* verify_env = std::getenv("HBC_BENCH_VERIFY");
  const bool verify = verify_env != nullptr && *verify_env != '\0';

  graph::gen::ScaleFreeParams params;
  params.num_vertices = 1u << scale;
  params.seed = 3;
  const graph::CSRGraph g = graph::gen::scale_free(params);
  bench::print_header(
      "dynamic updates: incremental BC vs batch size",
      "graph: " + g.summary() +
          (verify ? "\nverify: every batch checked against from-scratch Brandes"
                  : ""));

  // Seed the engine: this full sweep is the from-scratch baseline every
  // batch row's speedup column is measured against.
  util::Timer seed_timer;
  dyn::IncrementalBC engine(g);
  const double full_ms = seed_timer.elapsed_seconds() * 1e3;
  const auto n = static_cast<double>(g.num_vertices());
  std::printf("epoch-0 full sweep: %.1f ms (%u vertices)\n\n", full_ms,
              g.num_vertices());

  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) edges.emplace(u, v);
    }
  }
  util::Xoshiro256 rng(42);

  const char* mode_env = std::getenv("HBC_BENCH_UPDATE_MODE");
  const std::string mode = (mode_env != nullptr && *mode_env != '\0') ? mode_env : "random";
  TwinPlan plan;
  std::size_t twin_next = 0;
  bool verify_ok = true;
  if (mode == "twin") {
    std::size_t want = 0;
    for (const std::size_t b : batch_sizes) want += b;
    plan = plant_twins(g, want);
    if (plan.pairs.size() < want) {
      std::fprintf(stderr, "twin mode: only %zu plantable pairs, need %zu\n",
                   plan.pairs.size(), want);
      return 1;
    }
    // Untimed setup epoch: rewiring ~every leaf pair is maximal churn, so
    // this also exercises the fallback path at full scale.
    util::Timer setup_timer;
    const dyn::BatchStats setup = engine.apply(plan.setup);
    std::printf("update mode: twin — setup epoch rewired %zu leaf pairs "
                "(%zu updates, affected %.1f%%, full recompute: %s, %.1f ms)\n",
                plan.pairs.size(), static_cast<std::size_t>(setup.applied_updates),
                100.0 * setup.affected_fraction,
                setup.full_recompute ? "yes" : "no",
                setup_timer.elapsed_seconds() * 1e3);
    if (verify && !verify_against_brandes(engine)) {
      std::printf("  verify FAIL after twin setup epoch\n");
      verify_ok = false;
    }
    std::printf("\n");
  } else if (mode != "random") {
    std::fprintf(stderr, "unknown HBC_BENCH_UPDATE_MODE '%s' (random|twin)\n",
                 mode.c_str());
    return 1;
  }

  std::printf("%7s | %10s %12s %10s %12s %9s %8s\n", "batch", "ms", "updates/s",
              "affected", "recomputed", "speedup", "full?");
  bench::print_rule();

  for (const std::size_t batch_size : batch_sizes) {
    dyn::UpdateBatch batch;
    if (mode == "twin") {
      while (batch.size() < batch_size && twin_next < plan.pairs.size()) {
        const auto [u, v] = plan.pairs[twin_next++];
        if (edges.emplace(u, v).second) batch.insert(u, v);
      }
    } else {
      batch = next_batch(edges, g.num_vertices(), batch_size, rng);
    }
    util::Timer t;
    const dyn::BatchStats stats = engine.apply(batch);
    const double batch_ms = t.elapsed_seconds() * 1e3;
    const double ups = batch_ms > 0.0
                           ? static_cast<double>(stats.applied_updates) /
                                 (batch_ms / 1e3)
                           : 0.0;
    const double speedup = batch_ms > 0.0 ? full_ms / batch_ms : 0.0;
    std::printf("%7zu | %10.1f %12.1f %9.1f%% %12llu %8.1fx %8s\n", batch_size,
                batch_ms, ups, 100.0 * stats.affected_fraction,
                static_cast<unsigned long long>(stats.sources_recomputed), speedup,
                stats.full_recompute ? "yes" : "no");

    bool batch_ok = true;
    if (verify) {
      batch_ok = verify_against_brandes(engine);
      if (stats.sources_recomputed >= g.num_vertices() && !stats.full_recompute) {
        std::printf("  verify FAIL: no sources pruned (%llu of %u recomputed)\n",
                    static_cast<unsigned long long>(stats.sources_recomputed),
                    g.num_vertices());
        batch_ok = false;
      }
      std::printf("  verify[batch=%zu]: %s (affected %.2f%%, recomputed %llu/%u)\n",
                  batch_size, batch_ok ? "PASS" : "FAIL",
                  100.0 * stats.affected_fraction,
                  static_cast<unsigned long long>(stats.sources_recomputed),
                  g.num_vertices());
      verify_ok = verify_ok && batch_ok;
    }

    std::ostringstream rec;
    rec << "{\"bench\":\"dynamic_updates\",\"mode\":\"" << mode
        << "\",\"scale\":" << scale
        << ",\"batch\":" << batch_size << ",\"applied\":" << stats.applied_updates
        << ",\"epoch\":" << stats.epoch << ",\"batch_ms\":" << batch_ms
        << ",\"updates_per_sec\":" << ups
        << ",\"affected_fraction\":" << stats.affected_fraction
        << ",\"sources_recomputed\":" << stats.sources_recomputed
        << ",\"sources_skipped\":" << stats.sources_skipped
        << ",\"identify_ms\":" << stats.identify_ms
        << ",\"recompute_ms\":" << stats.recompute_ms
        << ",\"full_recompute\":" << (stats.full_recompute ? "true" : "false")
        << ",\"full_sweep_ms\":" << full_ms
        << ",\"verified\":" << (verify ? (batch_ok ? "true" : "false") : "null")
        << "}";
    g_json_records.push_back(rec.str());
  }
  bench::print_rule();

  const dyn::IncrementalBC::Totals& totals = engine.totals();
  std::printf("totals: %llu batches, %llu updates, %llu sources recomputed, "
              "%llu skipped (%.1f%% of %llu root passes), %llu full recomputes\n",
              static_cast<unsigned long long>(totals.batches),
              static_cast<unsigned long long>(totals.applied_updates),
              static_cast<unsigned long long>(totals.sources_recomputed),
              static_cast<unsigned long long>(totals.sources_skipped),
              totals.batches > 0
                  ? 100.0 * static_cast<double>(totals.sources_skipped) /
                        (static_cast<double>(totals.batches) * n)
                  : 0.0,
              static_cast<unsigned long long>(totals.batches) *
                  static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(totals.full_recomputes));

  if (verify) {
    std::printf("verification: %s\n", verify_ok ? "PASS" : "FAIL");
  }
  emit_json();
  return verify_ok ? 0 : 1;
}
