// Approximation estimators (Brandes–Pich uniform pivots, Bader et al.
// adaptive sampling): unbiasedness, convergence, and threshold behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "cpu/approx.hpp"
#include "cpu/brandes.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace hbc;
using graph::CSRGraph;
using graph::VertexId;

TEST(UniformApprox, AllPivotsEqualsExactInExpectation) {
  // Averaging over many seeds approaches exact BC (law of large numbers).
  const CSRGraph g = graph::gen::small_world({.num_vertices = 200, .k = 3, .seed = 4});
  const auto exact = cpu::brandes(g).bc;

  std::vector<double> avg(g.num_vertices(), 0.0);
  const int trials = 16;
  for (int t = 0; t < trials; ++t) {
    const auto est = cpu::approximate_bc(g, {.num_pivots = 50, .seed = 100u + t});
    EXPECT_EQ(est.pivots_used, 50u);
    for (std::size_t v = 0; v < avg.size(); ++v) avg[v] += est.bc[v] / trials;
  }
  double total_exact = 0, total_err = 0;
  for (std::size_t v = 0; v < avg.size(); ++v) {
    total_exact += exact[v];
    total_err += std::abs(avg[v] - exact[v]);
  }
  EXPECT_LT(total_err / total_exact, 0.15);
}

TEST(UniformApprox, MorePivotsReduceError) {
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 300, .attach = 3, .seed = 1});
  const auto exact = cpu::brandes(g).bc;
  auto total_error = [&](std::uint32_t pivots) {
    double err = 0, avg_trials = 6;
    for (int t = 0; t < 6; ++t) {
      const auto est = cpu::approximate_bc(g, {.num_pivots = pivots, .seed = 7u + t});
      double e = 0;
      for (std::size_t v = 0; v < exact.size(); ++v) e += std::abs(est.bc[v] - exact[v]);
      err += e / avg_trials;
    }
    return err;
  };
  EXPECT_LT(total_error(128), total_error(8));
}

TEST(UniformApprox, DeterministicInSeed) {
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 100, .attach = 2, .seed = 2});
  const auto a = cpu::approximate_bc(g, {.num_pivots = 10, .seed = 5});
  const auto b = cpu::approximate_bc(g, {.num_pivots = 10, .seed = 5});
  EXPECT_EQ(a.bc, b.bc);
}

TEST(UniformApprox, EmptyGraph) {
  const CSRGraph g;
  const auto est = cpu::approximate_bc(CSRGraph({0}, {}, true), {.num_pivots = 5});
  EXPECT_TRUE(est.bc.empty());
}

TEST(UniformApprox, TopVertexIdentifiedWithFewPivots) {
  // Star-of-paths: the hub dominates; even a handful of pivots finds it.
  graph::EdgeList edges;
  for (VertexId arm = 0; arm < 6; ++arm) {
    VertexId prev = 0;
    for (VertexId hop = 0; hop < 10; ++hop) {
      const VertexId v = 1 + arm * 10 + hop;
      edges.push_back({prev, v});
      prev = v;
    }
  }
  const CSRGraph g = graph::build_csr(61, edges);
  const auto est = cpu::approximate_bc(g, {.num_pivots = 6, .seed = 3});
  VertexId best = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (est.bc[v] > est.bc[best]) best = v;
  }
  EXPECT_EQ(best, 0u);
}

TEST(AdaptiveApprox, HighCentralityVertexStopsEarly) {
  // Hub of a star: its dependency per pivot is ~n, so the c*n threshold
  // fires after roughly c pivots.
  graph::EdgeList edges;
  const VertexId leaves = 200;
  for (VertexId v = 1; v <= leaves; ++v) edges.push_back({0, v});
  const CSRGraph g = graph::build_csr(leaves + 1, edges);

  const auto r = cpu::adaptive_bc(g, 0, {.c = 2.0, .seed = 1});
  EXPECT_TRUE(r.threshold_hit);
  EXPECT_LT(r.pivots_used, 10u);
  const double exact = static_cast<double>(leaves) * (leaves - 1);
  EXPECT_GT(r.bc_estimate, exact * 0.5);
  EXPECT_LT(r.bc_estimate, exact * 2.0);
}

TEST(AdaptiveApprox, ZeroCentralityVertexNeverHitsThreshold) {
  graph::EdgeList edges;
  for (VertexId v = 1; v <= 20; ++v) edges.push_back({0, v});
  const CSRGraph g = graph::build_csr(21, edges);
  // A leaf has BC 0: the loop must run to the pivot cap.
  const auto r = cpu::adaptive_bc(g, 5, {.c = 1.0, .max_pivots = 15, .seed = 2});
  EXPECT_FALSE(r.threshold_hit);
  EXPECT_EQ(r.pivots_used, 15u);
  EXPECT_DOUBLE_EQ(r.bc_estimate, 0.0);
}

TEST(AdaptiveApprox, EstimateTracksExactValue) {
  const CSRGraph g = graph::gen::scale_free({.num_vertices = 250, .attach = 2, .seed = 6});
  const auto exact = cpu::brandes(g).bc;
  // Pick the highest-BC vertex; the adaptive estimate should be within a
  // factor ~2 with generous sampling.
  VertexId target = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (exact[v] > exact[target]) target = v;
  }
  const auto r = cpu::adaptive_bc(g, target, {.c = 20.0, .max_pivots = 250, .seed = 9});
  EXPECT_GT(r.bc_estimate, exact[target] * 0.5);
  EXPECT_LT(r.bc_estimate, exact[target] * 2.0);
}

TEST(AdaptiveApprox, InvalidTargetReturnsZero) {
  const CSRGraph g = graph::gen::figure1_graph();
  const auto r = cpu::adaptive_bc(g, 100);
  EXPECT_EQ(r.pivots_used, 0u);
  EXPECT_EQ(r.bc_estimate, 0.0);
}

}  // namespace
