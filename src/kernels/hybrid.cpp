#include <cstdlib>
#include <vector>

#include "kernels/block_driver.hpp"
#include "kernels/kernels.hpp"

namespace hbc::kernels {

using graph::CSRGraph;

// Algorithm 4: per-iteration selection between the work-efficient and
// edge-parallel primitives. The strategy is reconsidered only when the
// vertex frontier changes size by more than alpha between consecutive
// levels; the new strategy is edge-parallel iff the next frontier exceeds
// beta. Processing always starts work-efficiently (the initial frontier
// is the root alone, and a wrong work-efficient choice costs at most
// ~2.2x while a wrong edge-parallel choice can cost >10x, §IV.B).
//
// Edge-parallel levels keep maintaining the queue/S/ends bookkeeping so
// frontier sizes stay observable and the dependency stage can still jump
// directly to each level's S-slice.
RunResult run_hybrid(const CSRGraph& g, const RunConfig& config) {
  DriverLayout layout;
  layout.label = "hybrid";
  layout.needs_edge_sources = true;
  layout.per_block.push_back(
      {BCWorkspace::work_efficient_bytes(g.num_vertices()), "hybrid.block_locals"});
  BlockDriver driver(g, config, layout);

  const std::int64_t alpha = config.hybrid.alpha;
  const std::int64_t beta = config.hybrid.beta;

  // Forward mode per depth, reused by the dependency stage. Block-local
  // scratch: indexed by the owning block so concurrent blocks don't share.
  std::vector<std::vector<Mode>> level_modes(driver.num_blocks());

  driver.run([&](BlockDriver::RootTask& task) {
    BCWorkspace& ws = task.ws;
    gpusim::BlockContext& ctx = task.ctx;
    std::vector<Mode>& modes = level_modes[task.block_id];

    ws.init_root(task.root, ctx);
    modes.clear();

    Mode mode = Mode::WorkEfficient;
    {
      SimSpan stage(task.trace, ctx, "shortest-path", trace::kPhase);
      for (;;) {
        const std::uint64_t before = ctx.cycles();
        const BCWorkspace::LevelStats level =
            mode == Mode::WorkEfficient
                ? ws.we_forward_level(ctx)
                : ws.ep_forward_level(ctx, ws.current_depth(), /*maintain_queue=*/true);
        modes.push_back(mode);
        if (mode == Mode::WorkEfficient) {
          ++task.we_levels;
        } else {
          ++task.ep_levels;
        }
        if (task.stats) {
          task.stats->iterations.push_back({ws.current_depth(), level.vertex_frontier,
                                            level.edge_frontier, ctx.cycles() - before,
                                            mode});
        }
        trace_level(task.trace, ctx, ws.current_depth(), level.vertex_frontier,
                    level.edge_frontier, mode, ctx.cycles() - before);

        // Algorithm 4: reconsider only when the frontier moved by > alpha.
        ctx.charge_cycles(ctx.cost().hybrid_decision);
        const std::int64_t q_change =
            std::llabs(static_cast<std::int64_t>(ws.q_next_len()) -
                       static_cast<std::int64_t>(ws.q_curr_len()));
        if (q_change > alpha) {
          const Mode next_mode = static_cast<std::int64_t>(ws.q_next_len()) > beta
                                     ? Mode::EdgeParallel
                                     : Mode::WorkEfficient;
          // |ΔQ| > α: the strategy is actually reconsidered — record the
          // decision inputs, and a separate switch event when it flips.
          if (task.trace && task.trace->wants(trace::kDecision)) {
            task.trace->instant("decision", trace::kDecision, ctx.sim_ns(),
                                {{"dq", static_cast<std::uint64_t>(q_change)},
                                 {"alpha", static_cast<std::uint64_t>(alpha)},
                                 {"q_next", ws.q_next_len()},
                                 {"beta", static_cast<std::uint64_t>(beta)},
                                 {"to", to_string(next_mode)}});
            if (next_mode != mode) {
              task.trace->instant("switch", trace::kDecision, ctx.sim_ns(),
                                  {{"from", to_string(mode)},
                                   {"to", to_string(next_mode)},
                                   {"depth", std::uint64_t{ws.current_depth()}}});
            }
          }
          mode = next_mode;
        }

        if (ws.q_next_len() == 0) break;
        ws.finish_level(ctx);
      }
    }
    const std::uint32_t max_depth = ws.max_depth();
    if (task.stats) task.stats->max_depth = max_depth;

    // Dependency stage mirrors the per-level strategy chosen forward.
    {
      SimSpan stage(task.trace, ctx, "dependency", trace::kPhase);
      for (std::uint32_t dep = max_depth; dep-- > 1;) {
        if (dep < modes.size() && modes[dep] == Mode::EdgeParallel) {
          ws.ep_backward_level(ctx, dep);
        } else {
          ws.we_backward_level(ctx, dep);
        }
      }
    }

    ws.accumulate_bc(task.bc, task.root, /*use_queue=*/true, ctx);
  });

  return driver.finish();
}

}  // namespace hbc::kernels
